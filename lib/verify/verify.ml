module Op = Picachu_ir.Op
module Instr = Picachu_ir.Instr
module Kernel = Picachu_ir.Kernel
module Dfg = Picachu_dfg.Dfg
module Arch = Picachu_cgra.Arch
module Mapper = Picachu_cgra.Mapper

let enabled () =
  match Sys.getenv_opt "PICACHU_VERIFY" with
  | Some ("1" | "true" | "on" | "yes") -> true
  | _ -> false

(* ------------------------------------------------------------- IR linter *)

(* Expected argument count per op.  Deliberately re-derived from the
   interpreter's consumption pattern rather than shared with
   [Kernel.validate]: the linter is the independent oracle, so the only
   common ground with the checked code is the [Op.t] type itself.  [None]
   means any arity is structurally admissible. *)
let expected_arity (op : Op.t) =
  match op with
  | Op.Const _ | Op.Input _ -> Some 0
  | Op.Bin _ | Op.Cmp _ | Op.Shift_exp | Op.Phi -> Some 2
  | Op.Un _ | Op.Br | Op.Fp2fx_int | Op.Fp2fx_frac | Op.Lut _ -> Some 1
  | Op.Select -> Some 3
  | Op.Load _ -> Some 1 (* address phi *)
  | Op.Store _ -> Some 2 (* address phi, value *)
  | Op.Fused _ -> None

let is_branch (op : Op.t) =
  match op with Op.Br | Op.Fused Op.Cmp_br -> true | _ -> false

let lint_loop ~kernel ~produced ~scalars (loop : Kernel.loop) =
  let fs = ref [] in
  let err ?node code fmt =
    Printf.ksprintf
      (fun m ->
        fs :=
          Finding.make ~kernel ~loop:loop.Kernel.label ?node Finding.Lint
            Finding.Error ~code "%s" m
          :: !fs)
      fmt
  in
  let warn ?node code fmt =
    Printf.ksprintf
      (fun m ->
        fs :=
          Finding.make ~kernel ~loop:loop.Kernel.label ?node Finding.Lint
            Finding.Warning ~code "%s" m
          :: !fs)
      fmt
  in
  let body = Array.of_list loop.Kernel.body in
  let n = Array.length body in
  (* dense, ordered ids *)
  Array.iteri
    (fun pos (i : Instr.t) ->
      if i.Instr.id <> pos then
        err ~node:i.Instr.id "dense-ids" "instruction at position %d has id %d" pos
          i.Instr.id)
    body;
  (* per-instruction checks *)
  let use_count = Array.make (Stdlib.max n 1) 0 in
  Array.iteri
    (fun pos (i : Instr.t) ->
      let nargs = List.length i.Instr.args in
      (match expected_arity i.Instr.op with
      | Some a when a <> nargs ->
          err ~node:pos "arity" "%s takes %d operands, found %d" (Op.name i.Instr.op) a
            nargs
      | _ -> ());
      (match i.Instr.op with
      | Op.Fused _ ->
          warn ~node:pos "fused-in-ir"
            "fused op %s in kernel IR (fusion is a DFG-level transform)"
            (Op.name i.Instr.op)
      | _ -> ());
      List.iteri
        (fun k a ->
          if a < 0 || a >= n then
            err ~node:pos "bad-arg" "operand %d references missing instruction %%%d" k a
          else begin
            use_count.(a) <- use_count.(a) + 1;
            (* SSA def-before-use; the only legal forward reference is the
               loop-carried operand of a phi *)
            if a >= pos && not (i.Instr.op = Op.Phi && k = 1) then
              err ~node:pos "forward-ref" "operand %%%d used before definition" a
          end)
        i.Instr.args;
      (* memory checks *)
      (match i.Instr.op with
      | Op.Load s | Op.Store s ->
          if i.Instr.offset < 0 || i.Instr.offset >= loop.Kernel.step then
            err ~node:pos "offset-range" "offset %d outside [0, step=%d)" i.Instr.offset
              loop.Kernel.step;
          ignore s
      | _ ->
          if i.Instr.offset <> 0 then
            warn ~node:pos "offset-range" "offset %d on non-memory op" i.Instr.offset);
      (match i.Instr.op with
      | Op.Load s ->
          if not (List.mem s produced) then
            err ~node:pos "undeclared-stream" "load from stream %s never produced" s
      | Op.Store _ -> () (* declared-output check is done at kernel level *)
      | Op.Input s ->
          if not (List.mem s scalars) then
            err ~node:pos "unbound-scalar" "scalar %s not live here" s
      | _ -> ()))
    body;
  (* loop-control skeleton *)
  let branches =
    Array.to_list body |> List.filter (fun (i : Instr.t) -> is_branch i.Instr.op)
  in
  (match branches with
  | [ _ ] -> ()
  | l -> err "branch-count" "expected exactly one branch, found %d" (List.length l));
  if loop.Kernel.step < 1 then err "bad-step" "step %d < 1" loop.Kernel.step;
  if loop.Kernel.vector_width < 1 then
    err "bad-step" "vector_width %d < 1" loop.Kernel.vector_width;
  (* exports *)
  List.iter
    (fun (name, id) ->
      if id < 0 || id >= n then
        err "bad-export" "export %s references missing instruction %%%d" name id
      else use_count.(id) <- use_count.(id) + 1)
    loop.Kernel.exports;
  (* dead definitions: a value no instruction consumes and no export
     observes.  Stores and branches are effects, not values. *)
  Array.iteri
    (fun pos (i : Instr.t) ->
      match i.Instr.op with
      | Op.Store _ | Op.Br | Op.Fused Op.Cmp_br -> ()
      | _ ->
          if pos < Array.length use_count && use_count.(pos) = 0 then
            warn ~node:pos "dead-def" "%s result is never used" (Op.name i.Instr.op))
    body;
  (* a loop with no store and no export computes nothing observable *)
  let has_store =
    Array.exists
      (fun (i : Instr.t) -> match i.Instr.op with Op.Store _ -> true | _ -> false)
      body
  in
  if (not has_store) && loop.Kernel.exports = [] then
    warn "dead-loop" "loop has no stores and no exports";
  List.rev !fs

let lint_kernel (k : Kernel.t) =
  let kernel = k.Kernel.name in
  let fs = ref [] in
  let kerr sev code fmt =
    Printf.ksprintf
      (fun m -> fs := Finding.make ~kernel Finding.Lint sev ~code "%s" m :: !fs)
      fmt
  in
  (* walk loops in program order, tracking which streams have data and which
     scalars are live — [Kernel.validate] checks only membership, the linter
     additionally checks ordering (a loop may not read a stream an earlier
     loop has not yet written). *)
  let stored = Hashtbl.create 8 and loaded = Hashtbl.create 8 in
  let _, _, loop_findings =
    List.fold_left
      (fun (produced, scalars, acc) (loop : Kernel.loop) ->
        let scalars =
          List.fold_left
            (fun scalars (name, _) -> name :: scalars)
            scalars loop.Kernel.pre
        in
        let lf = lint_loop ~kernel ~produced ~scalars loop in
        List.iter
          (fun (i : Instr.t) ->
            match i.Instr.op with
            | Op.Store s ->
                Hashtbl.replace stored s ();
                if not (List.mem s k.Kernel.outputs) then
                  fs :=
                    Finding.make ~kernel ~loop:loop.Kernel.label ~node:i.Instr.id
                      Finding.Lint Finding.Error ~code:"undeclared-stream"
                      "store to undeclared output %s" s
                    :: !fs
            | Op.Load s -> Hashtbl.replace loaded s ()
            | _ -> ())
          loop.Kernel.body;
        let produced =
          List.filter_map
            (fun (i : Instr.t) ->
              match i.Instr.op with Op.Store s -> Some s | _ -> None)
            loop.Kernel.body
          @ produced
        in
        let scalars = List.map fst loop.Kernel.exports @ scalars in
        (produced, scalars, acc @ lf))
      (k.Kernel.inputs, k.Kernel.scalar_inputs, [])
      k.Kernel.loops
  in
  if k.Kernel.loops = [] then kerr Finding.Error "no-loops" "kernel has no loops";
  List.iter
    (fun out ->
      if not (Hashtbl.mem stored out) then
        kerr Finding.Warning "unstored-output" "declared output %s is never stored" out)
    k.Kernel.outputs;
  List.iter
    (fun inp ->
      if not (Hashtbl.mem loaded inp) then
        kerr Finding.Warning "unused-input" "declared input %s is never loaded" inp)
    k.Kernel.inputs;
  loop_findings @ List.rev !fs

(* --------------------------------------------------- DFG invariant checks *)

let member_matches (a : Op.t) (b : Op.t) =
  match (a, b) with
  | Op.Cmp _, Op.Cmp _ -> true
  | Op.Bin x, Op.Bin y -> x = y
  | _ -> a = b

let check_dfg ?source (g : Dfg.t) =
  let fs = ref [] in
  let add sev ?node code fmt =
    Printf.ksprintf
      (fun m ->
        fs := Finding.make ~loop:g.Dfg.label ?node Finding.Dfg_check sev ~code "%s" m :: !fs)
      fmt
  in
  let n = Dfg.node_count g in
  Array.iteri
    (fun i (node : Dfg.node) ->
      if node.Dfg.id <> i then
        add Finding.Error ~node:i "node-id" "node at index %d has id %d" i node.Dfg.id;
      (* members must agree with the node's op *)
      (match node.Dfg.op with
      | Op.Fused f ->
          let expect = Op.fused_members f in
          if List.length node.Dfg.members <> List.length expect then
            add Finding.Error ~node:i "member-count" "%s carries %d members, expected %d"
              (Op.name node.Dfg.op)
              (List.length node.Dfg.members)
              (List.length expect)
          else if not (List.for_all2 member_matches expect node.Dfg.members) then
            add Finding.Error ~node:i "member-kind" "%s member kinds do not match pattern"
              (Op.name node.Dfg.op)
      | op ->
          if node.Dfg.members <> [ op ] then
            add Finding.Error ~node:i "member-count" "unfused node must carry exactly itself");
      if List.length node.Dfg.origins <> List.length node.Dfg.members then
        add Finding.Error ~node:i "origin-count" "%d origins for %d members"
          (List.length node.Dfg.origins)
          (List.length node.Dfg.members);
      if
        node.Dfg.vector
        && not (g.Dfg.vector_width > 1 && List.for_all Op.is_vectorizable node.Dfg.members)
      then
        add Finding.Error ~node:i "vector-flag" "vector flag set on non-vectorizable node")
    g.Dfg.nodes;
  (* edges *)
  let has_phi_member (node : Dfg.node) = List.mem Op.Phi node.Dfg.members in
  List.iter
    (fun (e : Dfg.edge) ->
      if e.Dfg.src < 0 || e.Dfg.src >= n || e.Dfg.dst < 0 || e.Dfg.dst >= n then
        add Finding.Error "edge-endpoint" "edge n%d -> n%d out of range" e.Dfg.src e.Dfg.dst
      else begin
        if e.Dfg.distance <> 0 && e.Dfg.distance <> 1 then
          add Finding.Error ~node:e.Dfg.dst "edge-distance" "edge n%d -> n%d has distance %d"
            e.Dfg.src e.Dfg.dst e.Dfg.distance;
        if e.Dfg.distance > 0 && not (has_phi_member g.Dfg.nodes.(e.Dfg.dst)) then
          add Finding.Error ~node:e.Dfg.dst "back-edge-target"
            "loop-carried edge into non-phi node n%d (%s)" e.Dfg.dst
            (Op.name g.Dfg.nodes.(e.Dfg.dst).Dfg.op);
        if e.Dfg.src = e.Dfg.dst && e.Dfg.distance = 0 then
          add Finding.Error ~node:e.Dfg.src "forward-cycle" "distance-0 self edge on n%d"
            e.Dfg.src
      end)
    g.Dfg.edges;
  (* acyclicity of the distance-0 subgraph (Kahn, independent of
     [Dfg.topo_order] which raises instead of reporting) *)
  let indeg = Array.make (Stdlib.max n 1) 0 in
  let fwd =
    List.filter
      (fun (e : Dfg.edge) ->
        e.Dfg.distance = 0 && e.Dfg.src >= 0 && e.Dfg.src < n && e.Dfg.dst >= 0
        && e.Dfg.dst < n && e.Dfg.src <> e.Dfg.dst)
      g.Dfg.edges
  in
  List.iter (fun (e : Dfg.edge) -> indeg.(e.Dfg.dst) <- indeg.(e.Dfg.dst) + 1) fwd;
  let queue = Queue.create () in
  for i = 0 to n - 1 do
    if indeg.(i) = 0 then Queue.add i queue
  done;
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    incr seen;
    List.iter
      (fun (e : Dfg.edge) ->
        if e.Dfg.src = u then begin
          indeg.(e.Dfg.dst) <- indeg.(e.Dfg.dst) - 1;
          if indeg.(e.Dfg.dst) = 0 then Queue.add e.Dfg.dst queue
        end)
      fwd
  done;
  if !seen <> n then
    add Finding.Error "forward-cycle" "distance-0 subgraph is cyclic (%d of %d nodes sorted)"
      !seen n;
  (* origins against the source loop: every non-configuration instruction
     appears exactly once, with the member op it claims *)
  (match source with
  | None -> ()
  | Some (loop : Kernel.loop) ->
      let body = Array.of_list loop.Kernel.body in
      let count = Array.length body in
      let covered = Array.make (Stdlib.max count 1) 0 in
      Array.iteri
        (fun i (node : Dfg.node) ->
          List.iteri
            (fun k origin ->
              if origin < 0 || origin >= count then
                add Finding.Error ~node:i "origin-range" "origin %%%d outside source loop"
                  origin
              else begin
                covered.(origin) <- covered.(origin) + 1;
                match List.nth_opt node.Dfg.members k with
                | Some m when not (member_matches m body.(origin).Instr.op) ->
                    add Finding.Error ~node:i "origin-mismatch"
                      "member %s does not match source %%%d (%s)" (Op.name m) origin
                      (Op.name body.(origin).Instr.op)
                | _ -> ()
              end)
            node.Dfg.origins)
        g.Dfg.nodes;
      Array.iteri
        (fun id (i : Instr.t) ->
          let expected =
            match i.Instr.op with Op.Const _ | Op.Input _ -> 0 | _ -> 1
          in
          if covered.(id) <> expected then
            add Finding.Error ~node:id "origin-coverage"
              "source %%%d (%s) claimed by %d nodes, expected %d" id (Op.name i.Instr.op)
              covered.(id) expected)
        body);
  List.rev !fs

(* ------------------------------------- modulo-schedule translation validator *)

(* Re-derives the legality of a [Mapper.mapping] from first principles: the
   only facts taken from the mapper are the claimed placements, II, and its
   summary statistics (which are recounted). *)
let check_mapping (arch : Arch.t) (g : Dfg.t) (m : Mapper.mapping) =
  let fs = ref [] in
  let add sev ?node code fmt =
    Printf.ksprintf
      (fun msg ->
        fs :=
          Finding.make ~loop:g.Dfg.label ?node Finding.Schedule_check sev ~code "%s" msg
          :: !fs)
      fmt
  in
  let n = Dfg.node_count g in
  let tiles = Arch.tiles arch in
  if m.Mapper.ii < 1 then add Finding.Error "ii-range" "II = %d" m.Mapper.ii;
  if Array.length m.Mapper.schedule <> n then
    add Finding.Error "schedule-size" "schedule covers %d nodes, DFG has %d"
      (Array.length m.Mapper.schedule) n;
  let bound = Stdlib.min n (Array.length m.Mapper.schedule) in
  let placed u = u < bound in
  let ii = Stdlib.max 1 m.Mapper.ii in
  (* placements, capabilities, slot exclusivity: one issue per (tile, cycle
     mod II) slot *)
  let slots = Hashtbl.create 64 in
  for u = 0 to bound - 1 do
    let p = m.Mapper.schedule.(u) in
    let op = g.Dfg.nodes.(u).Dfg.op in
    if p.Mapper.time < 0 || p.Mapper.tile < 0 || p.Mapper.tile >= tiles then
      add Finding.Error ~node:u "unplaced" "node n%d at (t=%d, tile=%d)" u p.Mapper.time
        p.Mapper.tile
    else begin
      if not (Arch.supports arch ~tile:p.Mapper.tile op) then
        if Op.is_memory op && not (Arch.has_mem_port arch p.Mapper.tile) then
          add Finding.Error ~node:u "mem-port" "%s on tile %d: no Shared Buffer port"
            (Op.name op) p.Mapper.tile
        else
          add Finding.Error ~node:u "capability" "%s not executable on tile %d (%s)"
            (Op.name op) p.Mapper.tile
            (Picachu_cgra.Fu.kind_name (Arch.tile_kind arch p.Mapper.tile));
      let key = (p.Mapper.tile, p.Mapper.time mod ii) in
      (match Hashtbl.find_opt slots key with
      | Some other ->
          add Finding.Error ~node:u "slot-collision"
            "nodes n%d and n%d share tile %d slot %d (II=%d)" other u p.Mapper.tile
            (p.Mapper.time mod ii) ii
      | None -> Hashtbl.add slots key u)
    end
  done;
  (* dependence inequality t(dst) >= t(src) + lat + hops - II*distance for
     every edge; loop-carried self edges need lat <= II*distance *)
  List.iter
    (fun (e : Dfg.edge) ->
      if placed e.Dfg.src && placed e.Dfg.dst then begin
        let ps = m.Mapper.schedule.(e.Dfg.src) and pd = m.Mapper.schedule.(e.Dfg.dst) in
        let lat = Arch.latency arch g.Dfg.nodes.(e.Dfg.src).Dfg.op in
        if e.Dfg.src = e.Dfg.dst then begin
          if lat > e.Dfg.distance * ii then
            add Finding.Error ~node:e.Dfg.src "timing"
              "self recurrence n%d: latency %d > II*distance = %d" e.Dfg.src lat
              (e.Dfg.distance * ii)
        end
        else
          let hops = Arch.distance arch ps.Mapper.tile pd.Mapper.tile in
          let earliest = ps.Mapper.time + lat + hops - (e.Dfg.distance * ii) in
          if pd.Mapper.time < earliest then
            add Finding.Error ~node:e.Dfg.dst "timing"
              "edge n%d@(t%d,tile%d) -> n%d@(t%d,tile%d): needs t >= %d (lat %d, hops \
               %d, dist %d)"
              e.Dfg.src ps.Mapper.time ps.Mapper.tile e.Dfg.dst pd.Mapper.time
              pd.Mapper.tile earliest lat hops e.Dfg.distance
      end)
    g.Dfg.edges;
  (* independent recount of the mapper's summary statistics *)
  if Array.length m.Mapper.schedule = n then begin
    let makespan =
      let acc = ref 0 in
      for u = 0 to n - 1 do
        let p = m.Mapper.schedule.(u) in
        acc :=
          Stdlib.max !acc (p.Mapper.time + Arch.latency arch g.Dfg.nodes.(u).Dfg.op)
      done;
      !acc
    in
    if makespan <> m.Mapper.makespan then
      add Finding.Error "makespan-mismatch" "recounted makespan %d, mapping claims %d"
        makespan m.Mapper.makespan;
    let hops =
      List.fold_left
        (fun acc (e : Dfg.edge) ->
          acc
          + Arch.distance arch
              m.Mapper.schedule.(e.Dfg.src).Mapper.tile
              m.Mapper.schedule.(e.Dfg.dst).Mapper.tile)
        0 g.Dfg.edges
    in
    if hops <> m.Mapper.routed_hops then
      add Finding.Error "hops-mismatch" "recounted %d routed hops, mapping claims %d" hops
        m.Mapper.routed_hops
  end;
  List.rev !fs

let check_loop ~arch ?source g m = check_dfg ?source g @ check_mapping arch g m
