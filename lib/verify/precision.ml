module Op = Picachu_ir.Op
module Instr = Picachu_ir.Instr
module Kernel = Picachu_ir.Kernel
module Numfmt = Picachu_numerics.Numfmt
module Lut = Picachu_numerics.Lut
module Lut_catalog = Picachu_numerics.Lut_catalog

(* Static precision analysis: abstractly execute a kernel over pairs
   (affine form of the ideal value, error radius), where "ideal" means the
   same dataflow evaluated in exact real arithmetic on the same (already
   format-quantized) inputs, and the error radius bounds |finite - ideal|
   for the finite machine that rounds every computed data-path result
   through the format under test.  The affine component supplies the value
   magnitudes the error transfer functions need (and tracks correlations
   the interval domain cannot, e.g. x*x >= 0); the error component
   composes per-op propagation rules with one fresh rounding quantum per
   quantized op.  Constants live in wide configuration registers (the
   Range convention) and scalar live-ins are host-side exact; both carry
   zero error.  The result is a guaranteed per-instruction bound with no
   execution involved — soundness is separately enforced by the qcheck
   harness in the test suite, which compares bit-accurate runs against the
   claimed bounds. *)

type config = {
  stream_ranges : (string * (float * float)) list;
  default_stream : float * float;
  default_scalar : float * float;
  trip_max : int;
}

let default_config =
  {
    stream_ranges = [];
    default_stream = (-2.0, 2.0);
    default_scalar = (-2.0, 2.0);
    trip_max = 1024;
  }

(* ------------------------------------------------- quantization contract *)

(* Which instruction results the finite machine rounds through the lane
   format: every computed data-path value.  Pass-through ops (phi, select,
   max/min via their Bin arm below, store, load) hand on an operand that is
   already in format; cmp/br are control bits; constants are configuration
   registers; scalar inputs arrive on the host path. *)
let quantized (op : Op.t) =
  match op with
  | Op.Bin _ | Op.Un _ | Op.Fp2fx_int | Op.Fp2fx_frac | Op.Shift_exp
  | Op.Lut _ ->
      true
  | Op.Const _ | Op.Input _ | Op.Cmp _ | Op.Select | Op.Phi | Op.Load _
  | Op.Store _ | Op.Br | Op.Fused _ ->
      false

(* Does rounding provably leave this op's exact result unchanged, given
   in-format in-range operands?  Copies and sign flips always; on the
   fixed-point grid, sums, floors and the FP2FX split are closed too. *)
let requantize_exact fmt (op : Op.t) =
  match op with
  | Op.Bin (Op.Max | Op.Min) | Op.Un (Op.Neg | Op.Abs) -> true
  | Op.Bin (Op.Add | Op.Sub) | Op.Un Op.Floor | Op.Fp2fx_int | Op.Fp2fx_frac
    ->
      Numfmt.exact_sums fmt
  | _ -> false

let rounder fmt : Kernel.loop -> Instr.t -> float -> float =
 fun loop ->
  let body = Array.of_list loop.Kernel.body in
  let skel = Range.skeleton_ids body in
  fun (i : Instr.t) v ->
    if quantized i.Instr.op && not (List.mem i.Instr.id skel) then
      Numfmt.quantize fmt v
    else v

(* --------------------------------------------------------- abstract value *)

(* per-iteration value: affine form of the ideal + error radius *)
type aval = { av : Affine.t; err : float }

(* per-instruction joined state across iterations *)
type cell = { lo : float; hi : float; err : float }

let cell_top = { lo = neg_infinity; hi = infinity; err = infinity }

let cell_of_aval (v : aval) =
  let lo, hi = Affine.interval v.av in
  { lo; hi; err = v.err }

let cell_join a b =
  { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi; err = Float.max a.err b.err }

let cell_equal a b = a.lo = b.lo && a.hi = b.hi && a.err = b.err

let aval_of_cell cx (c : cell) = { av = Affine.of_interval cx c.lo c.hi; err = c.err }

let ideal_mag av =
  let lo, hi = Affine.interval av in
  Float.max (Float.abs lo) (Float.abs hi)

(* outward slack on magnitude/bound comparisons: the analysis itself runs
   in float64 and must not mis-prove by its own last-ulp rounding *)
let slack = 1e-9

let inflate x = if Float.is_finite x then x *. (1.0 +. slack) else x

(* Lipschitz constants of the shipped LUTs over their clamped domain,
   from the catalogue (a PWL interpolant's constant is its max segment
   slope; for "phi" the historical 0.4 bound — sup Phi' = 1/sqrt(2pi)
   ~ 0.3989 — is preserved exactly) *)
let lut_lipschitz = Lut_catalog.lipschitz

let lut_interval = Lut_catalog.interval

(* ------------------------------------------------------------ op transfer *)

(* error of the rounding step appended to a quantized op: zero when the op
   is grid-exact, one quantum at the finite value's magnitude otherwise;
   infinite (no proof) when the finite value may leave the format *)
let finish fmt op av err =
  if not (quantized op) then { av; err }
  else
    let m = ideal_mag av +. err in
    if not (Float.is_finite m) || inflate m > Numfmt.max_value fmt then
      { av; err = infinity }
    else
      let rnd =
        if requantize_exact fmt op then 0.0 else Numfmt.quantum fmt ~mag:m
      in
      { av; err = err +. rnd }

let eval_body cx fmt (body : Instr.t array) ~lookup_stream ~lookup_scalar
    ~phi_value =
  let count = Array.length body in
  let bot = { av = Affine.top; err = infinity } in
  let values = Array.make count bot in
  Array.iter
    (fun (i : Instr.t) ->
      let arg k =
        match List.nth_opt i.Instr.args k with
        | Some a when a >= 0 && a < count -> values.(a)
        | _ -> bot
      in
      let v =
        match i.Instr.op with
        | Op.Const c -> { av = Affine.const c; err = 0.0 }
        | Op.Input s -> lookup_scalar s
        | Op.Phi -> phi_value i.Instr.id (arg 0)
        | Op.Load s -> lookup_stream s
        | Op.Store _ -> arg 1
        | Op.Br -> arg 0
        | Op.Cmp _ ->
            (* a predicate bit on the control path; Select accounts for the
               flip risk from its own operands *)
            { av = Affine.of_interval cx 0.0 1.0; err = 0.0 }
        | Op.Select ->
            let t = arg 1 and f = arg 2 in
            let flip_possible =
              match List.nth_opt i.Instr.args 0 with
              | Some c when c >= 0 && c < count -> (
                  match (body.(c)).Instr.op with
                  | Op.Cmp _ ->
                      List.exists
                        (fun a ->
                          a < 0 || a >= count || values.(a).err <> 0.0)
                        (body.(c)).Instr.args
                  | _ -> values.(c).err <> 0.0)
              | _ -> true
            in
            let err =
              if not flip_possible then Float.max t.err f.err
              else
                (* the two runs may take different branches: pay the
                   distance between the branch values on top *)
                let tlo, thi = Affine.interval t.av
                and flo, fhi = Affine.interval f.av in
                let w = Float.max thi fhi -. Float.min tlo flo in
                Float.max t.err f.err +. w
            in
            { av = Affine.join cx t.av f.av; err }
        | Op.Bin op -> (
            let a = arg 0 and b = arg 1 in
            match op with
            | Op.Add -> { av = Affine.add a.av b.av; err = a.err +. b.err }
            | Op.Sub -> { av = Affine.sub a.av b.av; err = a.err +. b.err }
            | Op.Mul ->
                let am = ideal_mag a.av and bm = ideal_mag b.av in
                {
                  av = Affine.mul a.av b.av;
                  err = (am *. b.err) +. (bm *. a.err) +. (a.err *. b.err);
                }
            | Op.Div ->
                let blo, bhi = Affine.interval b.av in
                let bmin =
                  if blo > 0.0 then blo else if bhi < 0.0 then -.bhi else 0.0
                in
                let bmin_fin = bmin -. b.err in
                let av = Affine.div cx a.av b.av in
                if bmin_fin <= 0.0 then { av; err = infinity }
                else
                  let am = ideal_mag a.av and bm = ideal_mag b.av in
                  {
                    av;
                    err =
                      ((bm *. a.err) +. (am *. b.err)) /. (bmin_fin *. bmin);
                  }
            | Op.Max | Op.Min ->
                let alo, ahi = Affine.interval a.av
                and blo, bhi = Affine.interval b.av in
                (* domination: when one operand provably wins in both the
                   ideal and the finite run, the result is a copy of it *)
                let pick_a, pick_b =
                  match op with
                  | Op.Max ->
                      ( alo > bhi && alo -. a.err > bhi +. b.err,
                        blo > ahi && blo -. b.err > ahi +. a.err )
                  | _ ->
                      ( ahi < blo && ahi +. a.err < blo -. b.err,
                        bhi < alo && bhi +. b.err < alo -. a.err )
                in
                if pick_a then a
                else if pick_b then b
                else
                  let joiner =
                    match op with Op.Max -> Affine.max_ | _ -> Affine.min_
                  in
                  { av = joiner cx a.av b.av; err = Float.max a.err b.err })
        | Op.Un Op.Neg -> { av = Affine.neg (arg 0).av; err = (arg 0).err }
        | Op.Un Op.Abs -> { av = Affine.abs cx (arg 0).av; err = (arg 0).err }
        | Op.Un Op.Floor ->
            let a = arg 0 in
            let err = if a.err = 0.0 then 0.0 else a.err +. 1.0 in
            { av = Affine.floor cx a.av; err }
        | Op.Fp2fx_int ->
            let a = arg 0 in
            let err = if a.err = 0.0 then 0.0 else a.err +. 1.0 in
            { av = Affine.floor cx a.av; err }
        | Op.Fp2fx_frac ->
            let a = arg 0 in
            (* both fractional parts live in [0, 1), so the split
               discontinuity costs at most 1 *)
            let err =
              if a.err = 0.0 then 0.0 else Float.min (a.err +. 1.0) 1.0
            in
            { av = Affine.of_interval cx 0.0 1.0; err }
        | Op.Shift_exp ->
            let a = arg 0 and e = arg 1 in
            let alo, ahi = Affine.interval a.av
            and elo, ehi = Affine.interval e.av in
            let clamp v = Float.max (-150.0) (Float.min 129.0 v) in
            let av =
              if Float.is_finite elo && Float.is_finite ehi then
                let p_lo =
                  Float.ldexp 1.0
                    (int_of_float (Float.floor (clamp (elo -. 0.5))))
                and p_hi =
                  Float.ldexp 1.0
                    (int_of_float (Float.ceil (clamp (ehi +. 0.5))))
                in
                let cands =
                  [ alo *. p_lo; alo *. p_hi; ahi *. p_lo; ahi *. p_hi ]
                in
                Affine.of_interval cx
                  (List.fold_left Float.min infinity cands)
                  (List.fold_left Float.max neg_infinity cands)
              else Affine.top
            in
            let err =
              if Float.is_finite e.err && Float.is_finite ehi then
                let k =
                  if e.err = 0.0 then 0
                  else Stdlib.min 64 (int_of_float (Float.floor e.err) + 1)
                in
                let k_hi = int_of_float (Float.ceil (clamp (ehi +. 0.5))) in
                let pow = Float.ldexp 1.0 k_hi in
                (a.err *. Float.ldexp pow k)
                +. (ideal_mag a.av *. pow *. (Float.ldexp 1.0 k -. 1.0))
              else infinity
            in
            { av; err }
        | Op.Lut name ->
            let a = arg 0 in
            let alo, ahi = Affine.interval a.av in
            let av =
              if Float.is_finite alo && Float.is_finite ahi then
                let lo, hi = lut_interval name alo ahi in
                Affine.of_interval cx lo hi
              else Affine.top
            in
            let err =
              match lut_lipschitz name with
              | Some l -> l *. a.err
              | None -> infinity
            in
            { av; err }
        | Op.Fused _ -> bot
      in
      values.(i.Instr.id) <- finish fmt i.Instr.op v.av v.err)
    body;
  values

(* -------------------------------------------------------- scalar pre-glue *)

(* the between-loop scalar glue runs on the host float64 path: errors from
   exported scalars propagate, but no rounding is added *)
let eval_sexpr_aval cx scalars e : aval =
  let rec go = function
    | Kernel.Svar s -> (
        match List.assoc_opt s scalars with
        | Some c -> aval_of_cell cx c
        | None -> { av = Affine.top; err = infinity })
    | Kernel.Sconst v -> { av = Affine.const v; err = 0.0 }
    | Kernel.Sbin (op, x, y) -> (
        let a = go x and b = go y in
        match op with
        | Op.Add -> { av = Affine.add a.av b.av; err = a.err +. b.err }
        | Op.Sub -> { av = Affine.sub a.av b.av; err = a.err +. b.err }
        | Op.Mul ->
            {
              av = Affine.mul a.av b.av;
              err =
                (ideal_mag a.av *. b.err)
                +. (ideal_mag b.av *. a.err)
                +. (a.err *. b.err);
            }
        | Op.Div ->
            let blo, bhi = Affine.interval b.av in
            let bmin =
              if blo > 0.0 then blo else if bhi < 0.0 then -.bhi else 0.0
            in
            let bmin_fin = bmin -. b.err in
            let av = Affine.div cx a.av b.av in
            if bmin_fin <= 0.0 then { av; err = infinity }
            else
              {
                av;
                err =
                  ((ideal_mag b.av *. a.err) +. (ideal_mag a.av *. b.err))
                  /. (bmin_fin *. bmin);
              }
        | Op.Max ->
            {
              av = Affine.max_ cx a.av b.av;
              err = Float.max a.err b.err;
            }
        | Op.Min ->
            {
              av = Affine.min_ cx a.av b.av;
              err = Float.max a.err b.err;
            })
    | Kernel.Sisqrt x ->
        let a = go x in
        let lo, hi = Affine.interval a.av in
        let av =
          if hi <= 0.0 then Affine.top
          else
            let h = if lo > 0.0 then 1.0 /. sqrt lo else infinity in
            Affine.of_interval cx (1.0 /. sqrt hi) h
        in
        let err =
          let lmin = lo -. a.err in
          if lmin > 0.0 then a.err /. (2.0 *. (lmin *. sqrt lmin))
          else infinity
        in
        { av; err }
  in
  go e

(* ----------------------------------------------------------- loop analysis *)

let analyze_loop cfg ~cx ~fmt ~streams ~scalars (loop : Kernel.loop) =
  let body = Array.of_list loop.Kernel.body in
  let count = Array.length body in
  let scalars = ref scalars in
  (match Range.skeleton_ids body with
  | _ :: _ :: _ :: bound_id :: _ when bound_id >= 0 && bound_id < count -> (
      match (body.(bound_id)).Instr.op with
      | Op.Input s ->
          scalars :=
            (s, { lo = 1.0; hi = float_of_int cfg.trip_max; err = 0.0 })
            :: !scalars
      | _ -> ())
  | _ -> ());
  List.iter
    (fun (name, e) ->
      scalars := (name, cell_of_aval (eval_sexpr_aval cx !scalars e)) :: !scalars)
    loop.Kernel.pre;
  let input_stream_cell s =
    let lo, hi =
      match List.assoc_opt s cfg.stream_ranges with
      | Some r -> r
      | None -> cfg.default_stream
    in
    (* quantizing an in-range input can round it just past the configured
       range: widen by one quantum (saturation caps it at the format max) *)
    let q = Numfmt.quantum fmt ~mag:(Float.max (Float.abs lo) (Float.abs hi)) in
    let mx = Numfmt.max_value fmt in
    {
      lo = Float.max (lo -. q) (-.mx);
      hi = Float.min (hi +. q) mx;
      err = 0.0;
    }
  in
  let lookup_stream s =
    let c =
      match Hashtbl.find_opt streams s with
      | Some c -> c
      | None -> input_stream_cell s
    in
    aval_of_cell cx c
  in
  let lookup_scalar s =
    let c =
      match List.assoc_opt s !scalars with
      | Some c -> c
      | None ->
          let lo, hi =
            match List.assoc_opt s cfg.stream_ranges with
            | Some r -> r
            | None -> cfg.default_scalar
          in
          { lo; hi; err = 0.0 }
    in
    aval_of_cell cx c
  in
  let state = ref (Array.make count cell_top) in
  let first = ref true in
  let phi_value id (init : aval) =
    if !first then init
    else
      let s = !state in
      let carried =
        match (body.(id)).Instr.args with
        | [ _; next ] when next >= 0 && next < count -> s.(next)
        | _ -> cell_top
      in
      aval_of_cell cx
        (cell_join (cell_of_aval init) (cell_join s.(id) carried))
  in
  let run_iteration () =
    let values =
      eval_body cx fmt body ~lookup_stream ~lookup_scalar ~phi_value
    in
    let cells = Array.map cell_of_aval values in
    let joined =
      if !first then cells
      else Array.mapi (fun i c -> cell_join (!state).(i) c) cells
    in
    let stable = (not !first) && Array.for_all2 cell_equal !state joined in
    first := false;
    state := joined;
    stable
  in
  let iters = ref 0 in
  let stable = ref false in
  while (not !stable) && !iters <= cfg.trip_max do
    stable := run_iteration ();
    incr iters
  done;
  let cells = !state in
  Array.iter
    (fun (i : Instr.t) ->
      match i.Instr.op with
      | Op.Store s ->
          let c = cells.(i.Instr.id) in
          let c =
            match Hashtbl.find_opt streams s with
            | Some old -> cell_join old c
            | None -> c
          in
          Hashtbl.replace streams s c
      | _ -> ())
    body;
  let exports =
    List.map (fun (name, id) -> (name, cells.(id))) loop.Kernel.exports
  in
  (cells, exports @ !scalars)

(* ------------------------------------------------------------------ findings *)

let loop_findings fmt ~kernel (loop : Kernel.loop) (cells : cell array) =
  let body = Array.of_list loop.Kernel.body in
  let skeleton = Range.skeleton_ids body in
  let mx = Numfmt.max_value fmt in
  let fs = ref [] in
  let add sev ~node code f =
    Printf.ksprintf
      (fun m ->
        fs :=
          Finding.make ~kernel ~loop:loop.Kernel.label ~node
            Finding.Precision_check sev ~code "%s" m
          :: !fs)
      f
  in
  Array.iter
    (fun (i : Instr.t) ->
      let id = i.Instr.id in
      if (not (List.mem id skeleton)) && quantized i.Instr.op then begin
        let c = cells.(id) in
        (match i.Instr.op with
        | Op.Bin Op.Div -> (
            match List.nth_opt i.Instr.args 1 with
            | Some a when a >= 0 && a < Array.length cells ->
                let d = cells.(a) in
                let bmin =
                  if d.lo > 0.0 then d.lo
                  else if d.hi < 0.0 then -.d.hi
                  else 0.0
                in
                if bmin > 0.0 && bmin <= d.err then
                  add Finding.Warning ~node:id "prec-div-error"
                    "divisor stays %g from zero but carries error %g" bmin
                    d.err
            | _ -> ())
        | _ -> ());
        if
          not
            (Float.is_finite c.lo && Float.is_finite c.hi
           && Float.is_finite c.err)
        then
          add Finding.Warning ~node:id "prec-unbounded"
            "%s has no finite error bound under %s (value [%g, %g], error %g)"
            (Op.name i.Instr.op) (Numfmt.name fmt) c.lo c.hi c.err
        else if
          inflate (Float.max (Float.abs c.lo) (Float.abs c.hi) +. c.err) > mx
        then
          add Finding.Warning ~node:id "prec-overflow"
            "%s range [%g, %g] (+error %g) exceeds %s max %g"
            (Op.name i.Instr.op) c.lo c.hi c.err (Numfmt.name fmt) mx
      end)
    body;
  List.rev !fs

(* ------------------------------------------------------------------ results *)

type result = {
  fmt : Numfmt.t;
  bound : float;
  findings : Finding.t list;
  outputs : (string * (float * float) * float) list;
}

let analyze ?(config = default_config) ~fmt (k : Kernel.t) =
  let cx = Affine.ctx () in
  let streams = Hashtbl.create 8 in
  let _, findings =
    List.fold_left
      (fun (scalars, acc) loop ->
        let cells, scalars' =
          analyze_loop config ~cx ~fmt ~streams ~scalars loop
        in
        let fs = loop_findings fmt ~kernel:k.Kernel.name loop cells in
        (scalars', acc @ fs))
      ([], []) k.Kernel.loops
  in
  let outputs =
    Hashtbl.fold (fun s (c : cell) acc -> (s, (c.lo, c.hi), inflate c.err) :: acc) streams []
    |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
  in
  let bound =
    List.fold_left (fun b (_, _, e) -> Float.max b e) 0.0 outputs
  in
  { fmt; bound; findings; outputs }

let proven ?config ~fmt k = Float.is_finite (analyze ?config ~fmt k).bound

(* ------------------------------------------------------- format selection *)

type choice = {
  kernel : string;
  budget : float;
  fmt : Numfmt.t;
  bound : float;
  fallback : bool;
  tried : (Numfmt.t * float) list;
}

let default_budget () =
  match Sys.getenv_opt "PICACHU_ERROR_BUDGET" with
  | Some s -> ( match float_of_string_opt s with Some b when b > 0.0 -> b | _ -> 1e-2)
  | None -> 1e-2

let select_format ?config ?budget ?(candidates = Numfmt.catalogue)
    (k : Kernel.t) =
  let budget = match budget with Some b -> b | None -> default_budget () in
  let tried =
    List.map (fun f -> (f, (analyze ?config ~fmt:f k).bound)) candidates
  in
  match List.find_opt (fun (_, b) -> b <= budget) tried with
  | Some (fmt, bound) ->
      { kernel = k.Kernel.name; budget; fmt; bound; fallback = false; tried }
  | None ->
      (* nothing proves the budget: fall back to the best proven bound, or
         to the widest candidate when no bound is finite at all *)
      let best =
        List.fold_left
          (fun acc (f, b) ->
            match acc with
            | Some (_, bb) when bb <= b -> acc
            | _ when Float.is_finite b -> Some (f, b)
            | _ -> acc)
          None tried
      in
      let fmt, bound =
        match best with
        | Some fb -> fb
        | None -> (
            match List.rev tried with fb :: _ -> fb | [] -> (Numfmt.Fp32, infinity))
      in
      { kernel = k.Kernel.name; budget; fmt; bound; fallback = true; tried }
