(** Affine arithmetic — the correlation-tracking numeric domain under the
    precision analyzer.

    An abstract value is an affine form [c + Σ xi·εi + rad·ε'] over noise
    symbols [εi ∈ [-1, 1]]; forms that share symbols stay correlated
    through linear operations ([x - x] is exactly [0]) and the dedicated
    square rule keeps [x*x] non-negative, which a plain interval domain
    cannot.  Nonlinear remainders are absorbed into the anonymous residual
    radius [rad], so forms never grow beyond the symbols their inputs
    introduced.  All operations are sound: the concrete value always lies
    within {!interval} of its form. *)

type t = private {
  c : float;  (** center *)
  terms : (int * float) array;  (** symbol id -> coefficient, ids increasing *)
  rad : float;  (** anonymous residual radius, [>= 0] *)
}

type ctx
(** Noise-symbol allocator.  One per analysis run; forms from different
    contexts must not be mixed. *)

val ctx : unit -> ctx

val const : float -> t
val top : t
(** The unbounded form ([rad = ∞]). *)

val of_interval : ctx -> float -> float -> t
(** A fresh form spanning [[lo, hi]] with one new noise symbol (no symbol
    when the interval is a point; {!top} when unbounded or malformed). *)

val interval : t -> float * float
(** Enclosing interval [c ± radius]. *)

val radius : t -> float
val is_finite : t -> bool

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : float -> t -> t
val add_const : float -> t -> t

val mul : t -> t -> t
(** Affine product with the quadratic remainder lumped into [rad].
    Physically equal arguments use the square rule ([Dx·Dx ∈ [0, R²]],
    recentered), proving [x*x >= 0]. *)

val inv : ctx -> t -> t
(** [1/x] by min-range linearization over a provably zero-free interval
    (keeps the operand's symbols); {!top} when the interval straddles
    zero. *)

val div : ctx -> t -> t -> t

val join : ctx -> t -> t -> t
(** Interval hull as a fresh form (correlation with the operands is
    lost). *)

val abs : ctx -> t -> t
val floor : ctx -> t -> t
val max_ : ctx -> t -> t -> t
val min_ : ctx -> t -> t -> t
