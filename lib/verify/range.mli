(** Fixed-point range analysis over the kernel IR (interval domain).

    The INT16 execution lanes evaluate the Taylor-expansion kernels in
    fixed point (§4.2.2); a value whose dynamic range leaves the Q format
    saturates, and one far below a quantum flushes to zero.  This pass
    abstractly executes a kernel over intervals — loads drawn from
    configured per-stream ranges, loop-carried phis iterated to a joined
    fixpoint bounded by the maximum trip count — and reports every
    instruction whose value interval escapes the representable range
    ([fx-overflow] / [fx-unbounded]), may divide by zero ([div-by-zero]),
    or sits entirely below one quantum ([fx-precision], informational).

    The analysis is conservative: a kernel it calls {!safe} provably keeps
    every data-path value representable for all inputs within the
    configured ranges, but a flagged kernel may still be exact on benign
    inputs (intervals do not track correlations, e.g. [x*x] is analyzed as
    possibly negative).  The loop-control skeleton (induction variable,
    bound compare, branch) lives on the integer control path and is
    excluded from format checks. *)

type itv = { lo : float; hi : float }

val top : itv
val point : float -> itv
val make : float -> float -> itv
(** Normalizes a misordered pair. *)

val join : itv -> itv -> itv
val is_finite : itv -> bool
val contains_zero : itv -> bool

val binop_i : Picachu_ir.Op.binop -> itv -> itv -> itv
(** Interval transfer function of a primitive binary op (exposed for
    tests).  Division by an interval that provably excludes zero takes
    tight endpoint quotients; a divisor with zero as one endpoint keeps the
    finite bound from its nonzero end (half-bounded result) instead of
    widening to top. *)

val skeleton_ids : Picachu_ir.Instr.t array -> int list
(** Instruction ids of the loop-control skeleton (branch, bound compare,
    induction increment/phi and the trip-count register) — the integer
    control path excluded from data-path format checks.  Shared with the
    precision analyzer. *)

type config = {
  fmt : Picachu_numerics.Fixed_point.fmt;  (** the checked Q format *)
  stream_ranges : (string * (float * float)) list;
      (** per-stream (and per-scalar) input ranges, by name *)
  default_stream : float * float;  (** range of streams not listed *)
  default_scalar : float * float;  (** range of scalar live-ins not listed *)
  trip_max : int;  (** maximum element count any loop may see *)
}

val default_config : config
(** Q8.8 view of the INT16 lane, activations in [-2, 2], trips up to
    1024 — matching the repository's standard test vectors. *)

val fx_bounds : Picachu_numerics.Fixed_point.fmt -> float * float
(** Representable [(min, max)] of a format, as floats. *)

val analyze : ?config:config -> Picachu_ir.Kernel.t -> Finding.t list
(** All range findings for a kernel, loops analyzed in program order with
    exported scalars and intermediate streams flowing forward. *)

val significant : Finding.t list -> Finding.t list
(** Findings at Warning severity or above. *)

val safe : ?config:config -> Picachu_ir.Kernel.t -> bool
(** No significant findings: every data-path value provably fits the
    format for all configured inputs. *)
