type severity = Error | Warning | Info
type pass = Lint | Dfg_check | Schedule_check | Range_check | Precision_check

type loc = {
  kernel : string option;
  loop : string option;
  node : int option;
}

type t = {
  pass : pass;
  severity : severity;
  code : string;
  loc : loc;
  message : string;
}

let no_loc = { kernel = None; loop = None; node = None }

let make ?kernel ?loop ?node pass severity ~code fmt =
  Printf.ksprintf
    (fun message -> { pass; severity; code; loc = { kernel; loop; node }; message })
    fmt

let severity_name = function Error -> "error" | Warning -> "warning" | Info -> "info"

let pass_name = function
  | Lint -> "lint"
  | Dfg_check -> "dfg"
  | Schedule_check -> "schedule"
  | Range_check -> "range"
  | Precision_check -> "precision"

let pp_loc fmt loc =
  let parts =
    List.filter_map Fun.id
      [
        loc.kernel;
        loc.loop;
        Option.map (Printf.sprintf "%%%d") loc.node;
      ]
  in
  match parts with
  | [] -> ()
  | l -> Format.fprintf fmt " %s" (String.concat " " l)

let pp fmt f =
  Format.fprintf fmt "%s[%s/%s]%a: %s" (severity_name f.severity) (pass_name f.pass)
    f.code pp_loc f.loc f.message

let to_string f = Format.asprintf "%a" pp f

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

(* total order so finding lists print identically whatever the evaluation
   order (domain-pool sizes, roster sweep parallelism) that produced them *)
let compare a b =
  Stdlib.compare
    ( severity_rank a.severity, a.code, a.loc.kernel, a.loc.loop, a.loc.node,
      pass_name a.pass, a.message )
    ( severity_rank b.severity, b.code, b.loc.kernel, b.loc.loop, b.loc.node,
      pass_name b.pass, b.message )

let sort fs = List.sort compare fs
let errors fs = List.filter (fun f -> f.severity = Error) fs
let count sev fs = List.length (List.filter (fun f -> f.severity = sev) fs)
let has_code code fs = List.exists (fun f -> f.code = code) fs
let codes fs = List.sort_uniq Stdlib.compare (List.map (fun f -> f.code) fs)
