(* Affine arithmetic: an abstract value is c + Σ xi·εi (+ rad·ε'), with
   each εi an independent symbol ranging over [-1, 1].  Unlike intervals,
   two values sharing a symbol stay correlated through linear operations —
   x - x is exactly 0, and the square rule below proves x*x >= 0.  The
   symbol-free [rad] term absorbs nonlinear remainders and keeps forms
   from growing: it is an anonymous, always-fresh deviation. *)

type t = {
  c : float;
  terms : (int * float) array; (* symbol id -> coefficient, ids strictly increasing *)
  rad : float; (* >= 0; anonymous residual radius *)
}

type ctx = { mutable next : int }

let ctx () = { next = 0 }
let fresh_sym cx =
  let i = cx.next in
  cx.next <- i + 1;
  i

let no_terms : (int * float) array = [||]
let const v = { c = v; terms = no_terms; rad = 0.0 }
let top = { c = 0.0; terms = no_terms; rad = infinity }

let term_radius t = Array.fold_left (fun a (_, x) -> a +. Float.abs x) 0.0 t.terms
let radius t = term_radius t +. t.rad

let is_finite t =
  Float.is_finite t.c && Float.is_finite t.rad
  && Array.for_all (fun (_, x) -> Float.is_finite x) t.terms

let guard t = if is_finite t then t else top

let interval t =
  if is_finite t then
    let r = radius t in
    (t.c -. r, t.c +. r)
  else (neg_infinity, infinity)

let of_interval cx lo hi =
  if Float.is_finite lo && Float.is_finite hi && lo <= hi then
    if lo = hi then const lo
    else
      let c = (0.5 *. lo) +. (0.5 *. hi) in
      let r = (0.5 *. hi) -. (0.5 *. lo) in
      { c; terms = [| (fresh_sym cx, r) |]; rad = 0.0 }
  else top

(* merge two sorted term arrays with a combining function on coefficients *)
let merge_terms f g a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (la + lb) (0, 0.0) in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  let push id v =
    if v <> 0.0 then begin
      out.(!k) <- (id, v);
      incr k
    end
  in
  while !i < la || !j < lb do
    if !j >= lb || (!i < la && fst a.(!i) < fst b.(!j)) then begin
      let id, x = a.(!i) in
      push id (f x);
      incr i
    end
    else if !i >= la || fst b.(!j) < fst a.(!i) then begin
      let id, y = b.(!j) in
      push id (g y);
      incr j
    end
    else begin
      let id, x = a.(!i) and _, y = b.(!j) in
      push id (f x +. g y);
      incr i;
      incr j
    end
  done;
  Array.sub out 0 !k

let add a b =
  guard { c = a.c +. b.c; terms = merge_terms Fun.id Fun.id a.terms b.terms; rad = a.rad +. b.rad }

let sub a b =
  guard
    {
      c = a.c -. b.c;
      terms = merge_terms Fun.id (fun y -> -.y) a.terms b.terms;
      rad = a.rad +. b.rad;
    }

let neg a = { c = -.a.c; terms = Array.map (fun (i, x) -> (i, -.x)) a.terms; rad = a.rad }

let scale k a =
  if k = 0.0 then const 0.0
  else
    guard
      {
        c = k *. a.c;
        terms = Array.map (fun (i, x) -> (i, k *. x)) a.terms;
        rad = Float.abs k *. a.rad;
      }

let add_const v a = guard { a with c = a.c +. v }

let mul a b =
  if a == b then
    (* square: the quadratic deviation Dx*Dx lies in [0, R^2], not
       [-R^2, R^2] — recenter so the lower bound is kept.  This is what
       lets the analyzer prove x*x >= 0 where intervals cannot. *)
    let r = radius a in
    let q = r *. r in
    guard
      {
        c = (a.c *. a.c) +. (0.5 *. q);
        terms = Array.map (fun (i, x) -> (i, 2.0 *. a.c *. x)) a.terms;
        rad = (2.0 *. Float.abs a.c *. a.rad) +. (0.5 *. q);
      }
  else
    let ra = radius a and rb = radius b in
    guard
      {
        c = a.c *. b.c;
        terms =
          merge_terms (fun x -> b.c *. x) (fun y -> a.c *. y) a.terms b.terms;
        rad =
          (Float.abs a.c *. b.rad) +. (Float.abs b.c *. a.rad) +. (ra *. rb);
      }

(* 1/x by min-range linearization over a zero-free interval: on [l, u] with
   0 < l <= u, approximate 1/x ~ alpha*x + beta with alpha the slope at u
   (the shallow end), then pad with the exact maximal deviation.  Keeps the
   operand's symbols, so y/x with correlated y, x stays tight. *)
let rec inv cx a =
  let lo, hi = interval a in
  if lo > 0.0 && Float.is_finite hi then begin
    let alpha = -1.0 /. (hi *. hi) in
    let dmax = (1.0 /. lo) -. (alpha *. lo) in
    let dmin = 2.0 /. hi in
    let beta = 0.5 *. (dmax +. dmin) in
    let delta = 0.5 *. (dmax -. dmin) in
    guard { (add_const beta (scale alpha a)) with rad = (Float.abs alpha *. a.rad) +. delta }
  end
  else if hi < 0.0 && Float.is_finite lo then neg (inv cx (neg a))
  else if lo > 0.0 then of_interval cx 0.0 (1.0 /. lo)
  else if hi < 0.0 then of_interval cx (1.0 /. hi) 0.0
  else top

let div cx a b = mul a (inv cx b)

let join cx a b =
  if a == b then a
  else
    let alo, ahi = interval a and blo, bhi = interval b in
    of_interval cx (Float.min alo blo) (Float.max ahi bhi)

(* interval-domain fallbacks for non-affine ops: sound, correlation-losing *)
let lift1 cx f a =
  let lo, hi = interval a in
  let l, h = f lo hi in
  of_interval cx l h

let abs cx a =
  let lo, hi = interval a in
  if lo >= 0.0 then a
  else if hi <= 0.0 then neg a
  else of_interval cx 0.0 (Float.max (-.lo) hi)

let floor cx a = lift1 cx (fun lo hi -> (Float.floor lo, Float.floor hi)) a

let max_ cx a b =
  if a == b then a
  else
    let alo, ahi = interval a and blo, bhi = interval b in
    of_interval cx (Float.max alo blo) (Float.max ahi bhi)

let min_ cx a b =
  if a == b then a
  else
    let alo, ahi = interval a and blo, bhi = interval b in
    of_interval cx (Float.min alo blo) (Float.min ahi bhi)
