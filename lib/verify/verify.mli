(** Independent static verification of the compilation pipeline.

    Three passes re-derive, from first principles, the legality of what the
    compiler emits — deliberately sharing no logic with the code being
    checked (the mapper, the fusion pass, [Kernel.validate]) beyond the
    type definitions themselves:

    - {!lint_kernel}: SSA linting of the loop IR — dense ids,
      def-before-use (phi back edges excepted), per-op arity, load/store
      offset sanity, stream production order, scalar liveness, dead
      definitions and effect-free loops.
    - {!check_dfg}: DFG invariants — edge endpoints in range, distances in
      {0,1} with loop-carried edges only into phi-carrying nodes,
      acyclicity of the distance-0 subgraph, and (given the source loop)
      exact 1:1 accounting of fused-node [members]/[origins] against the
      loop body.
    - {!check_mapping}: modulo-schedule translation validation — at most
      one node per (tile, cycle mod II) slot, tile capability and Shared
      Buffer port constraints, the dependence inequality
      [t(dst) >= t(src) + lat + hops - II*distance] for every edge, and an
      independent recount of [routed_hops] and [makespan].

    Every check reports through {!Finding.t}; Error-severity findings are
    what the [PICACHU_VERIFY] compile gate and the [picachu lint] CLI act
    on.  {!Range} holds the companion fixed-point range analysis. *)

val enabled : unit -> bool
(** True when the [PICACHU_VERIFY] environment knob is set (to [1], [true],
    [on] or [yes]); read by [Compiler.compile_result] to decide whether to
    gate every compile behind the validator.  Off by default in hot paths;
    the test suite switches it on. *)

val lint_kernel : Picachu_ir.Kernel.t -> Finding.t list
(** Lint all loops of a kernel in program order, tracking which streams
    have been produced and which scalars are live. *)

val check_dfg : ?source:Picachu_ir.Kernel.loop -> Picachu_dfg.Dfg.t -> Finding.t list
(** DFG invariants; with [source], additionally checks members/origins
    consistency against the loop the graph was built from. *)

val check_mapping :
  Picachu_cgra.Arch.t -> Picachu_dfg.Dfg.t -> Picachu_cgra.Mapper.mapping ->
  Finding.t list
(** Re-derive legality of a mapping.  An empty result means the schedule is
    a valid modulo schedule of the graph on that architecture and the
    mapper's claimed statistics are honest. *)

val check_loop :
  arch:Picachu_cgra.Arch.t ->
  ?source:Picachu_ir.Kernel.loop ->
  Picachu_dfg.Dfg.t ->
  Picachu_cgra.Mapper.mapping ->
  Finding.t list
(** {!check_dfg} followed by {!check_mapping}. *)
