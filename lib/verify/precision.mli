(** Static precision analysis over the kernel IR (affine-arithmetic domain)
    and proven-bound automatic format selection.

    Abstract values are pairs of an {!Affine} form of the *ideal* value
    (the dataflow evaluated in exact real arithmetic on the same quantized
    inputs) and an error radius bounding [|finite - ideal|] for a machine
    that rounds every computed data-path result through a {!Numfmt} format.
    Loops iterate to a trip-bounded accumulating-join fixpoint exactly like
    {!Range}; every quantized op contributes one fresh rounding quantum at
    its proven magnitude, and an op whose finite value may leave the format
    loses its bound (reported as [prec-overflow] / [prec-unbounded]).

    The per-kernel {!result.bound} is a *guaranteed* worst-case output
    error — no execution involved; the qcheck soundness harness in the test
    suite independently checks bit-accurate runs against it.
    {!select_format} closes the loop: walk the candidate ladder cheapest
    first and pick the first format whose proven bound fits the error
    budget. *)

module Numfmt = Picachu_numerics.Numfmt

type config = {
  stream_ranges : (string * (float * float)) list;
  default_stream : float * float;
  default_scalar : float * float;
  trip_max : int;
}

val default_config : config
(** Activations in [[-2, 2]], trips up to 1024 — aligned with
    {!Range.default_config}. *)

val quantized : Picachu_ir.Op.t -> bool
(** Whether the finite machine rounds this op's result through the lane
    format (computed data-path values; pass-through/control/config ops do
    not re-round). *)

val rounder :
  Numfmt.t -> Picachu_ir.Kernel.loop -> Picachu_ir.Instr.t -> float -> float
(** The bit-accurate execution model as an {!Picachu_ir.Interp} rounding
    hook: quantizes exactly the instruction results the analyzer charges a
    rounding quantum for (skeleton excluded).  Partially apply per loop. *)

type result = {
  fmt : Numfmt.t;
  bound : float;
      (** sup over all stored streams of the proven [|finite - ideal|];
          [infinity] when some store has no finite proof *)
  findings : Finding.t list;
  outputs : (string * (float * float) * float) list;
      (** per stored stream: ideal value interval and proven error bound *)
}

val analyze : ?config:config -> fmt:Numfmt.t -> Picachu_ir.Kernel.t -> result

val proven : ?config:config -> fmt:Numfmt.t -> Picachu_ir.Kernel.t -> bool
(** Whether every output of the kernel has a finite proven error bound
    under the format. *)

type choice = {
  kernel : string;
  budget : float;
  fmt : Numfmt.t;  (** the chosen (cheapest proving, or fallback) format *)
  bound : float;  (** its proven bound; [infinity] when nothing proves *)
  fallback : bool;  (** no candidate met the budget *)
  tried : (Numfmt.t * float) list;  (** every candidate's proven bound *)
}

val default_budget : unit -> float
(** [PICACHU_ERROR_BUDGET] when set to a positive float, else [1e-2]. *)

val select_format :
  ?config:config ->
  ?budget:float ->
  ?candidates:Numfmt.t list ->
  Picachu_ir.Kernel.t ->
  choice
(** Walk [candidates] (default {!Numfmt.catalogue}, cheapest first) and
    choose the first whose proven bound is within the budget; otherwise
    fall back to the best-proven (or widest) candidate with
    [fallback = true]. *)
