module Op = Picachu_ir.Op
module Instr = Picachu_ir.Instr
module Kernel = Picachu_ir.Kernel
module Fx = Picachu_numerics.Fixed_point
module Lut = Picachu_numerics.Lut
module Lut_catalog = Picachu_numerics.Lut_catalog

(* ----------------------------------------------------------- interval domain *)

type itv = { lo : float; hi : float }

let top = { lo = neg_infinity; hi = infinity }
let point v = { lo = v; hi = v }
let make lo hi = if lo <= hi then { lo; hi } else { lo = hi; hi = lo }
let is_finite i = Float.is_finite i.lo && Float.is_finite i.hi
let join a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }
let equal a b = a.lo = b.lo && a.hi = b.hi
let guard i = if Float.is_nan i.lo || Float.is_nan i.hi then top else i

(* 0 * inf = 0 under interval multiplication (the zero operand is exact) *)
let mul_bound a b = if a = 0.0 || b = 0.0 then 0.0 else a *. b

let add_i a b = guard { lo = a.lo +. b.lo; hi = a.hi +. b.hi }
let sub_i a b = guard { lo = a.lo -. b.hi; hi = a.hi -. b.lo }

let mul_i a b =
  let p1 = mul_bound a.lo b.lo
  and p2 = mul_bound a.lo b.hi
  and p3 = mul_bound a.hi b.lo
  and p4 = mul_bound a.hi b.hi in
  guard
    {
      lo = Float.min (Float.min p1 p2) (Float.min p3 p4);
      hi = Float.max (Float.max p1 p2) (Float.max p3 p4);
    }

let contains_zero i = i.lo <= 0.0 && i.hi >= 0.0

let div_i a b =
  if b.lo > 0.0 || b.hi < 0.0 then
    (* divisor provably excludes zero: tight endpoint quotients *)
    let p1 = a.lo /. b.lo and p2 = a.lo /. b.hi and p3 = a.hi /. b.lo and p4 = a.hi /. b.hi in
    guard
      {
        lo = Float.min (Float.min p1 p2) (Float.min p3 p4);
        hi = Float.max (Float.max p1 p2) (Float.max p3 p4);
      }
  else if b.lo = 0.0 && b.hi > 0.0 then
    (* divisor in (0, hi]: the quotient is unbounded toward the sign(s) of
       the numerator but keeps the finite bound from the hi end *)
    if a.lo >= 0.0 then guard { lo = a.lo /. b.hi; hi = infinity }
    else if a.hi <= 0.0 then guard { lo = neg_infinity; hi = a.hi /. b.hi }
    else top
  else if b.hi = 0.0 && b.lo < 0.0 then
    (* divisor in [lo, 0): mirrored through the sign flip *)
    if a.lo >= 0.0 then guard { lo = neg_infinity; hi = a.lo /. b.lo }
    else if a.hi <= 0.0 then guard { lo = a.hi /. b.lo; hi = infinity }
    else top
  else top

let max_i a b = { lo = Float.max a.lo b.lo; hi = Float.max a.hi b.hi }
let min_i a b = { lo = Float.min a.lo b.lo; hi = Float.min a.hi b.hi }
let neg_i a = { lo = -.a.hi; hi = -.a.lo }

let abs_i a =
  if a.lo >= 0.0 then a
  else if a.hi <= 0.0 then neg_i a
  else { lo = 0.0; hi = Float.max (-.a.lo) a.hi }

let floor_i a = { lo = Float.floor a.lo; hi = Float.floor a.hi }

let binop_i (op : Op.binop) a b =
  match op with
  | Op.Add -> add_i a b
  | Op.Sub -> sub_i a b
  | Op.Mul -> mul_i a b
  | Op.Div -> div_i a b
  | Op.Max -> max_i a b
  | Op.Min -> min_i a b

(* ldexp over an interval: 2^round(e) with the exponent clamped to the FP32
   field the FP2FX unit produces *)
let shift_exp_i a e =
  let clamp v = Float.max (-150.0) (Float.min 129.0 v) in
  let p_lo = Float.ldexp 1.0 (int_of_float (Float.floor (clamp (e.lo -. 0.5)))) in
  let p_hi = Float.ldexp 1.0 (int_of_float (Float.ceil (clamp (e.hi +. 0.5)))) in
  mul_i a (make p_lo p_hi)

(* --------------------------------------------------------------- configuration *)

type config = {
  fmt : Fx.fmt;
  stream_ranges : (string * (float * float)) list;
  default_stream : float * float;
  default_scalar : float * float;
  trip_max : int;
}

let default_config =
  {
    (* dynamic fixed point with a Q8.8 view of the INT16 lane: 8 integer
       bits of headroom above the unit-interval activations *)
    fmt = Fx.fmt ~total_bits:16 ~frac_bits:8;
    stream_ranges = [];
    default_stream = (-2.0, 2.0);
    default_scalar = (-2.0, 2.0);
    trip_max = 1024;
  }

let fx_bounds fmt =
  (Fx.to_float fmt (Fx.min_int_value fmt), Fx.to_float fmt (Fx.max_int_value fmt))

(* --------------------------------------------------------- abstract execution *)

let eval_sexpr scalars e =
  let rec go = function
    | Kernel.Svar s -> ( match List.assoc_opt s scalars with Some i -> i | None -> top)
    | Kernel.Sconst v -> point v
    | Kernel.Sbin (op, a, b) -> binop_i op (go a) (go b)
    | Kernel.Sisqrt e ->
        let i = go e in
        if i.hi <= 0.0 then top
        else
          let hi = if i.lo > 0.0 then 1.0 /. sqrt i.lo else infinity in
          guard { lo = 1.0 /. sqrt i.hi; hi }
  in
  go e

(* The loop-control skeleton (induction phi, its increment, the bound
   compare, the branch and the trip-count register) lives on the integer
   control path of the BrT tiles, not the fixed-point data path; exclude it
   from format checks.  Derived independently of [Transform.find_skeleton]. *)
let skeleton_ids (body : Instr.t array) =
  match
    Array.find_opt (fun (i : Instr.t) -> i.Instr.op = Op.Br) body
  with
  | None -> []
  | Some br -> (
      match br.Instr.args with
      | [ cmp_id ] when cmp_id >= 0 && cmp_id < Array.length body -> (
          let cmp = body.(cmp_id) in
          match cmp.Instr.args with
          | [ iv_add_id; bound_id ]
            when iv_add_id >= 0 && iv_add_id < Array.length body -> (
              let iv_add = body.(iv_add_id) in
              match iv_add.Instr.args with
              | iv_phi_id :: _ ->
                  [ br.Instr.id; cmp_id; iv_add_id; bound_id; iv_phi_id ]
              | [] -> [ br.Instr.id; cmp_id; iv_add_id; bound_id ])
          | _ -> [ br.Instr.id; cmp_id ])
      | _ -> [ br.Instr.id ])

let lut_i name a =
  if Lut_catalog.known name then
    (* sound output range of the clamped PWL interpolant: interior nodes
       included, which reduces to the endpoint scan for monotone tables *)
    let lo, hi = Lut_catalog.interval name a.lo a.hi in
    guard (make lo hi)
  else top

(* One abstract iteration of the loop body.  [phi_value] supplies the value
   a phi observes this iteration. *)
let eval_body (body : Instr.t array) ~lookup_stream ~lookup_scalar ~phi_value =
  let count = Array.length body in
  let values = Array.make count top in
  Array.iter
    (fun (i : Instr.t) ->
      let arg k =
        match List.nth_opt i.Instr.args k with
        | Some a when a >= 0 && a < count -> values.(a)
        | _ -> top
      in
      let v =
        match i.Instr.op with
        | Op.Const c -> point c
        | Op.Input s -> lookup_scalar s
        | Op.Phi -> phi_value i.Instr.id (arg 0)
        | Op.Bin op -> binop_i op (arg 0) (arg 1)
        | Op.Un Op.Neg -> neg_i (arg 0)
        | Op.Un Op.Abs -> abs_i (arg 0)
        | Op.Un Op.Floor -> floor_i (arg 0)
        | Op.Cmp _ -> make 0.0 1.0
        | Op.Select -> join (arg 1) (arg 2)
        | Op.Load s -> lookup_stream s
        | Op.Store _ -> arg 1
        | Op.Fp2fx_int -> floor_i (arg 0)
        | Op.Fp2fx_frac -> make 0.0 1.0
        | Op.Shift_exp -> shift_exp_i (arg 0) (arg 1)
        | Op.Lut name -> lut_i name (arg 0)
        | Op.Br -> arg 0
        | Op.Fused _ -> top
      in
      values.(i.Instr.id) <- v)
    body;
  values

(* Abstract execution of one loop.  The transfer function is iterated with
   accumulating joins until it stabilizes or [trip_max] rounds have run.
   Because every concrete execution performs at most [trip_max] iterations
   (the trip count is bounded by configuration), the joined state after
   round k soundly covers every concrete run of up to k trips — so stopping
   at the cap needs no widening heuristics and the result is still a sound
   invariant.  Monotone accumulators (reduction sums) simply walk to their
   trip-bounded extreme; multiplicative blowups walk to infinity and get
   flagged as unbounded. *)
let analyze_loop cfg ~streams ~scalars (loop : Kernel.loop) =
  let body = Array.of_list loop.Kernel.body in
  let count = Array.length body in
  let scalars = ref scalars in
  (* the trip-count scalar (the branch bound) is a positive element count *)
  (match skeleton_ids body with
  | _ :: _ :: _ :: bound_id :: _ when bound_id >= 0 && bound_id < count -> (
      match (body.(bound_id)).Instr.op with
      | Op.Input s -> scalars := (s, make 1.0 (float_of_int cfg.trip_max)) :: !scalars
      | _ -> ())
  | _ -> ());
  List.iter
    (fun (name, e) -> scalars := (name, eval_sexpr !scalars e) :: !scalars)
    loop.Kernel.pre;
  let lookup_stream s =
    match Hashtbl.find_opt streams s with
    | Some i -> i
    | None ->
        let lo, hi =
          match List.assoc_opt s cfg.stream_ranges with
          | Some r -> r
          | None -> cfg.default_stream
        in
        make lo hi
  in
  let lookup_scalar s =
    match List.assoc_opt s !scalars with
    | Some i -> i
    | None ->
        let lo, hi =
          match List.assoc_opt s cfg.stream_ranges with
          | Some r -> r
          | None -> cfg.default_scalar
        in
        make lo hi
  in
  let prev = ref None in
  let phi_value id init =
    match !prev with
    | None -> init
    | Some (p : itv array) ->
        let carried =
          match (body.(id)).Instr.args with
          | [ _; next ] when next >= 0 && next < count -> p.(next)
          | _ -> top
        in
        join init (join p.(id) carried)
  in
  let state = ref (Array.make count top) in
  let run_iteration () =
    let values = eval_body body ~lookup_stream ~lookup_scalar ~phi_value in
    let joined =
      match !prev with
      | None -> values
      | Some p -> Array.mapi (fun i v -> join p.(i) v) values
    in
    let stable = match !prev with Some p -> Array.for_all2 equal p joined | None -> false in
    prev := Some joined;
    state := joined;
    stable
  in
  let iters = ref 0 in
  let stable = ref false in
  while (not !stable) && !iters <= cfg.trip_max do
    stable := run_iteration ();
    incr iters
  done;
  let values = !state in
  (* record stores and exports for downstream loops *)
  Array.iter
    (fun (i : Instr.t) ->
      match i.Instr.op with
      | Op.Store s ->
          let v = values.(i.Instr.id) in
          let v =
            match Hashtbl.find_opt streams s with Some old -> join old v | None -> v
          in
          Hashtbl.replace streams s v
      | _ -> ())
    body;
  let exports =
    List.map (fun (name, id) -> (name, values.(id))) loop.Kernel.exports
  in
  (values, exports @ !scalars)

(* ------------------------------------------------------------------ findings *)

let loop_findings cfg ~kernel (loop : Kernel.loop) (values : itv array) =
  let body = Array.of_list loop.Kernel.body in
  let skeleton = skeleton_ids body in
  let fx_lo, fx_hi = fx_bounds cfg.fmt in
  let step = Fx.to_float cfg.fmt 1 in
  let fs = ref [] in
  let add sev ~node code fmt =
    Printf.ksprintf
      (fun m ->
        fs :=
          Finding.make ~kernel ~loop:loop.Kernel.label ~node Finding.Range_check sev
            ~code "%s" m
          :: !fs)
      fmt
  in
  Array.iter
    (fun (i : Instr.t) ->
      let id = i.Instr.id in
      if not (List.mem id skeleton) then begin
        let checked =
          match i.Instr.op with
          (* constants are configuration registers (wide, saturated at load
             time); predicates are one bit; scalar inputs are checked where
             the producing loop exports them *)
          | Op.Const _ | Op.Input _ | Op.Cmp _ | Op.Br -> false
          | _ -> true
        in
        if checked then begin
          let v = values.(id) in
          (match i.Instr.op with
          | Op.Bin Op.Div ->
              let denom =
                match List.nth_opt i.Instr.args 1 with
                | Some a when a >= 0 && a < Array.length values -> values.(a)
                | _ -> top
              in
              if contains_zero denom then
                add Finding.Warning ~node:id "div-by-zero"
                  "divisor interval [%g, %g] contains zero" denom.lo denom.hi
          | _ -> ());
          if not (is_finite v) then
            add Finding.Warning ~node:id "fx-unbounded" "%s value is unbounded: [%g, %g]"
              (Op.name i.Instr.op) v.lo v.hi
          else if v.lo < fx_lo || v.hi > fx_hi then
            add Finding.Warning ~node:id "fx-overflow"
              "%s range [%g, %g] exceeds Q%d.%d representable [%g, %g]"
              (Op.name i.Instr.op) v.lo v.hi
              (cfg.fmt.Fx.total_bits - cfg.fmt.Fx.frac_bits)
              cfg.fmt.Fx.frac_bits fx_lo fx_hi
          else if
            Float.max (Float.abs v.lo) (Float.abs v.hi) < step
            && not (v.lo = 0.0 && v.hi = 0.0)
          then
            add Finding.Info ~node:id "fx-precision"
              "%s range [%g, %g] is below one quantum (%g): value flushes to zero"
              (Op.name i.Instr.op) v.lo v.hi step
        end
      end)
    body;
  List.rev !fs

let analyze ?(config = default_config) (k : Kernel.t) =
  let streams = Hashtbl.create 8 in
  let _, findings =
    List.fold_left
      (fun (scalars, acc) loop ->
        let values, scalars' = analyze_loop config ~streams ~scalars loop in
        let fs = loop_findings config ~kernel:k.Kernel.name loop values in
        (scalars', acc @ fs))
      ([], []) k.Kernel.loops
  in
  findings

let significant fs =
  List.filter
    (fun (f : Finding.t) -> f.Finding.severity <> Finding.Info)
    fs

let safe ?config k = significant (analyze ?config k) = []
