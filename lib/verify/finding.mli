(** Typed findings produced by the static-verification passes.

    Every pass of {!Verify} and {!Range} reports through this one channel: a
    finding carries the pass that produced it, a severity, a stable
    machine-readable [code] (e.g. ["slot-collision"], ["fx-overflow"]) that
    tests and mutant oracles key on, a pretty-printable location, and a
    human-readable message. *)

type severity = Error | Warning | Info

type pass = Lint | Dfg_check | Schedule_check | Range_check | Precision_check

type loc = {
  kernel : string option;
  loop : string option;  (** loop label, e.g. ["softmax.2"] *)
  node : int option;  (** instruction id or DFG node id *)
}

type t = {
  pass : pass;
  severity : severity;
  code : string;  (** stable finding class, kebab-case *)
  loc : loc;
  message : string;
}

val no_loc : loc

val make :
  ?kernel:string ->
  ?loop:string ->
  ?node:int ->
  pass ->
  severity ->
  code:string ->
  ('a, unit, string, t) format4 ->
  'a
(** [make ~loop:"softmax.2" ~node:4 Schedule_check Error ~code:"timing" fmt ...]
    builds one finding with a printf-style message. *)

val severity_name : severity -> string
val pass_name : pass -> string

val compare : t -> t -> int
(** Deterministic total order: severity (errors first), then code, then
    location, then pass and message. *)

val sort : t list -> t list
(** Sort by {!compare} — gives finding lists a stable, diffable print order
    regardless of the evaluation order that produced them. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val errors : t list -> t list
(** The Error-severity subset — what gates compilation and the lint CLI's
    exit code. *)

val count : severity -> t list -> int
val has_code : string -> t list -> bool
val codes : t list -> string list
(** Distinct codes present, sorted. *)
