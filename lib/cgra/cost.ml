type component = { area_mm2 : float; power_mw : float }

type breakdown = {
  sram : component;
  macs : component;
  cgra : component;
  others : component;
}

(* Unit costs at 45nm / 1GHz, calibrated so the default configuration
   reproduces the paper's Table 7 (see EXPERIMENTS.md for the comparison). *)
let basic_tile = { area_mm2 = 0.02914; power_mw = 2.287 }
let network_factor = 1.10 (* mesh links + config memory, per-CGRA multiplier *)
let sram_area_per_kb = 0.0096
let sram_power_per_kb = 0.1936
let mac_area = 0.4 /. 1024.0
let mac_power = 16.1 /. 1024.0
let others_fixed = { area_mm2 = 0.1; power_mw = 0.7 }

let fu_overheads =
  [
    ("fp2fx", 0.017, 0.008);
    ("vector-fus", 0.598, 0.184);
    ("fp-fus", 0.116, 0.263);
    ("lut", 0.005, 0.038);
  ]

(* The multiplier/divider array is what distinguishes a CoT from the
   basic-ALU tiles; it is not in the paper's special-FU overhead list (their
   basic-tile baseline already includes it), so it is accounted separately. *)
let muldiv_overhead = (0.45, 0.25)

let overhead_of names =
  List.fold_left
    (fun (a, p) (name, oa, op) ->
      if List.mem name names then (a +. oa, p +. op) else (a, p))
    (0.0, 0.0) fu_overheads

let tile_cost ~hetero kind =
  if not hetero then basic_tile
  else
    let units =
      match kind with
      | Fu.BaT | Fu.BrT -> [ "vector-fus"; "fp-fus" ]
      | Fu.CoT | Fu.UniT -> [ "fp2fx"; "vector-fus"; "fp-fus"; "lut" ]
    in
    let oa, op = overhead_of units in
    let ma, mp =
      match kind with Fu.CoT | Fu.UniT -> muldiv_overhead | Fu.BaT | Fu.BrT -> (0.0, 0.0)
    in
    {
      area_mm2 = basic_tile.area_mm2 *. (1.0 +. oa +. ma);
      power_mw = basic_tile.power_mw *. (1.0 +. op +. mp);
    }

let cgra_cost (arch : Arch.t) =
  let hetero = arch.flavor = Arch.Heterogeneous in
  let sum =
    Array.fold_left
      (fun acc kind ->
        let c = tile_cost ~hetero kind in
        { area_mm2 = acc.area_mm2 +. c.area_mm2; power_mw = acc.power_mw +. c.power_mw })
      { area_mm2 = 0.0; power_mw = 0.0 } arch.kinds
  in
  {
    area_mm2 = sum.area_mm2 *. network_factor;
    power_mw = sum.power_mw *. network_factor;
  }

let sram_cost ~kb =
  { area_mm2 = kb *. sram_area_per_kb; power_mw = kb *. sram_power_per_kb }

(* The Table 7 "lut" overhead prices the 2 KiB uniform CoT table; ROM
   scales linearly in capacity at this granularity, so a kernel's resident
   table bytes (e.g. the NLI segment tables) are charged pro rata against
   that calibrated point. *)
let lut_rom_cost ~bytes =
  let frac = float_of_int bytes /. 2048.0 in
  let oa, op = overhead_of [ "lut" ] in
  {
    area_mm2 = basic_tile.area_mm2 *. oa *. frac;
    power_mw = basic_tile.power_mw *. op *. frac;
  }

let systolic_cost ~dim ~sram_kb =
  let macs = dim * dim in
  {
    area_mm2 = (float_of_int macs *. mac_area) +. (sram_kb *. sram_area_per_kb);
    power_mw = (float_of_int macs *. mac_power) +. (sram_kb *. sram_power_per_kb);
  }

let picachu_breakdown ?(systolic_dim = 32) ?(shared_buffer_kb = 40.0) arch =
  (* input + weight SRAMs scale with the array dimension; the output SRAM is
     the multiplexed Shared Buffer *)
  let io_sram_kb = float_of_int (systolic_dim * systolic_dim) /. 4.0 in
  let sram_kb = (2.0 *. io_sram_kb) +. shared_buffer_kb in
  {
    sram = sram_cost ~kb:sram_kb;
    macs =
      {
        area_mm2 = float_of_int (systolic_dim * systolic_dim) *. mac_area;
        power_mw = float_of_int (systolic_dim * systolic_dim) *. mac_power;
      };
    cgra = cgra_cost arch;
    others = others_fixed;
  }

let total b =
  {
    area_mm2 = b.sram.area_mm2 +. b.macs.area_mm2 +. b.cgra.area_mm2 +. b.others.area_mm2;
    power_mw = b.sram.power_mw +. b.macs.power_mw +. b.cgra.power_mw +. b.others.power_mw;
  }

let energy_uj c ~cycles = c.power_mw *. float_of_int cycles *. 1e-6 (* mW * ns = pJ; 1e-6 pJ->uJ *)

let pp_breakdown fmt b =
  let t = total b in
  let line name (c : component) =
    Format.fprintf fmt "  %-8s %6.2f mm2 (%4.1f%%)  %7.1f mW (%4.1f%%)@." name c.area_mm2
      (100.0 *. c.area_mm2 /. t.area_mm2)
      c.power_mw
      (100.0 *. c.power_mw /. t.power_mw)
  in
  line "sram" b.sram;
  line "macs" b.macs;
  line "cgra" b.cgra;
  line "others" b.others;
  line "total" t
