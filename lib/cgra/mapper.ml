module Op = Picachu_ir.Op
module Nm = Picachu_numerics
module Dfg = Picachu_dfg.Dfg
module Analysis = Picachu_dfg.Analysis
module Parallel = Picachu_parallel.Parallel

type placement = { time : int; tile : int }

type mapping = {
  ii : int;
  schedule : placement array;
  makespan : int;
  routed_hops : int;
  arch_name : string;
}

exception Unmappable of string

(* Observability hooks for the compilation pipeline: how hard did the II
   search work?  Plain process-global atomics — attribution to a particular
   compile is the caller's business (the pipeline snapshots totals), so
   concurrent mapping on the domain pool stays exact. *)
type counters = {
  ii_attempts : int;
  backtracks : int;
  warm_hits : int;
  warm_rejects : int;
}

let stat_ii_attempts = Atomic.make 0
let stat_backtracks = Atomic.make 0
let stat_warm_hits = Atomic.make 0
let stat_warm_rejects = Atomic.make 0

let counters () =
  {
    ii_attempts = Atomic.get stat_ii_attempts;
    backtracks = Atomic.get stat_backtracks;
    warm_hits = Atomic.get stat_warm_hits;
    warm_rejects = Atomic.get stat_warm_rejects;
  }

let reset_counters () =
  Atomic.set stat_ii_attempts 0;
  Atomic.set stat_backtracks 0;
  Atomic.set stat_warm_hits 0;
  Atomic.set stat_warm_rejects 0

let popcount m =
  let c = ref 0 and m = ref m in
  while !m <> 0 do
    m := !m land (!m - 1);
    incr c
  done;
  !c

let res_mii arch (g : Dfg.t) =
  (* group nodes by the exact set of tiles able to execute them; each class
     of [count] nodes sharing [k] capable tiles forces ceil(count/k) *)
  let tiles = Arch.tiles arch in
  let n = Dfg.node_count g in
  let bound = ref 1 in
  if tiles <= 62 then begin
    (* fast path: the support set fits one int bitmask — a sort over a
       scratch array groups the classes without any list or tuple churn *)
    let masks = Array.make (Stdlib.max n 1) 0 in
    for u = 0 to n - 1 do
      let m = ref 0 in
      let op = g.nodes.(u).op in
      for t = 0 to tiles - 1 do
        if Arch.supports arch ~tile:t op then m := !m lor (1 lsl t)
      done;
      if !m = 0 then
        raise (Unmappable (Printf.sprintf "%s: op supported by no tile" g.label));
      masks.(u) <- !m
    done;
    Array.sort Int.compare masks;
    (* collapse to (distinct mask, node count) runs *)
    let cmask = Array.make (Stdlib.max n 1) 0 in
    let ccount = Array.make (Stdlib.max n 1) 0 in
    let classes = ref 0 in
    let i = ref 0 in
    while !i < n do
      let m = masks.(!i) in
      let j = ref !i in
      while !j < n && masks.(!j) = m do
        incr j
      done;
      cmask.(!classes) <- m;
      ccount.(!classes) <- !j - !i;
      incr classes;
      i := !j
    done;
    let k = !classes in
    if k <= 12 then
      (* Hall-condition bound over class unions: any set of classes whose
         combined [c] nodes share only [s] supporting tiles forces
         ceil(c / s) — per-class bounds miss this when classes overlap
         (e.g. loads confined to port columns squeezed by ALU ops that can
         also only run there).  Classes are few, so 2^k unions are cheap;
         the all-classes union subsumes the old aggregate total/tiles
         term. *)
      for subset = 1 to (1 lsl k) - 1 do
        let union = ref 0 and c = ref 0 in
        for ci = 0 to k - 1 do
          if subset land (1 lsl ci) <> 0 then begin
            union := !union lor cmask.(ci);
            c := !c + ccount.(ci)
          end
        done;
        let s = popcount !union in
        bound := Stdlib.max !bound ((!c + s - 1) / s)
      done
    else
      for ci = 0 to k - 1 do
        let s = popcount cmask.(ci) in
        bound := Stdlib.max !bound ((ccount.(ci) + s - 1) / s)
      done
  end
  else begin
    (* wide fabrics: fall back to the list-keyed grouping *)
    let tbl = Hashtbl.create 8 in
    Array.iter
      (fun (node : Dfg.node) ->
        let supp = ref [] in
        for t = tiles - 1 downto 0 do
          if Arch.supports arch ~tile:t node.op then supp := t :: !supp
        done;
        let key = !supp in
        Hashtbl.replace tbl key
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
      g.nodes;
    Hashtbl.iter
      (fun tiles_of count ->
        let k = List.length tiles_of in
        if k = 0 then
          raise (Unmappable (Printf.sprintf "%s: op supported by no tile" g.label));
        bound := Stdlib.max !bound ((count + k - 1) / k))
      tbl
  end;
  Stdlib.max !bound ((n + tiles - 1) / tiles)

(* Transport-aware recurrence bound.  Around every loop-carried cycle the
   mapper enforces  sum (lat + hops) <= II * distance;  RecMII keeps only
   the latency term.  When the recurrence endpoints' capability classes are
   disjoint (e.g. a phi pinned to BrT corners fed by a CoT-only op), the
   back edge must pay at least the minimum inter-class mesh distance, so

     II >= ceil((cycle_latency + min_hop(supp src, supp dst)) / distance)

   is still a true lower bound for the mapper's model — [min_hop] is 0
   whenever the two classes share a tile.  Latencies are the architecture's
   own ([Arch.latency]), matching exactly what [try_map] enforces. *)
let transport_mii arch (g : Dfg.t) =
  let back = List.filter (fun (e : Dfg.edge) -> e.distance > 0) g.edges in
  if back = [] then 1
  else begin
    let n = Dfg.node_count g in
    let tiles = Arch.tiles arch in
    let lat = Array.init n (fun u -> Arch.latency arch g.nodes.(u).op) in
    let supp =
      Array.init n (fun u ->
          let op = g.nodes.(u).op in
          let l = ref [] in
          for t = tiles - 1 downto 0 do
            if Arch.supports arch ~tile:t op then l := t :: !l
          done;
          !l)
    in
    let min_hop s d =
      let best = ref max_int in
      List.iter
        (fun ts ->
          List.iter
            (fun td -> best := Stdlib.min !best (Arch.distance arch ts td))
            supp.(d))
        supp.(s);
      if !best = max_int then 0 else !best
    in
    let order = Dfg.topo_order g in
    (* longest forward-path latency from [src] to [dst], endpoints included;
       -1 when unreachable (same convention as Analysis.longest_path, but
       with the architecture's latencies) *)
    let longest src dst =
      let dist = Array.make n min_int in
      dist.(src) <- lat.(src);
      List.iter
        (fun u ->
          if dist.(u) > min_int then
            List.iter
              (fun ((v, d) : int * int) ->
                if d = 0 then
                  let cand = dist.(u) + lat.(v) in
                  if cand > dist.(v) then dist.(v) <- cand)
              (Dfg.succs g u))
        order;
      if dist.(dst) = min_int then -1 else dist.(dst)
    in
    List.fold_left
      (fun acc (e : Dfg.edge) ->
        if e.src = e.dst then
          Stdlib.max acc ((lat.(e.src) + e.distance - 1) / e.distance)
        else
          let p = longest e.dst e.src in
          if p < 0 then acc
          else
            Stdlib.max acc
              ((p + min_hop e.src e.dst + e.distance - 1) / e.distance))
      1 back
  end

let min_ii arch g =
  Stdlib.max (res_mii arch g)
    (Stdlib.max (Analysis.rec_mii g) (transport_mii arch g))

(* ----------------------------------------------------- per-graph context *)

(* Everything about (arch, graph) that the Rau search reads but never
   writes, computed once per [map_dfg] and shared by every (II, salt)
   attempt — including the parallel retry salts, which only ever read it.
   Adjacency is packed as [node lsl 8 lor distance] ints, the mesh distance
   matrix is flattened, and the scheduling priority (height, then lowest
   id) is pre-encoded so the worklist heap compares single ints. *)
type ctx = {
  n : int;
  tiles : int;
  arch_name : string;
  lat : int array;
  preds : int array array;  (** packed (pred lsl 8) lor distance, edge order *)
  succs : int array array;
  cand_tiles : int array array;  (** supporting tiles per node, ascending *)
  dist : int array;  (** flattened tiles x tiles Manhattan distances *)
  phi_anchor : int array;
  prio : int array;  (** height * (n+1) + (n - u): max-heap key *)
}

let make_ctx arch (g : Dfg.t) =
  let n = Dfg.node_count g in
  let tiles = Arch.tiles arch in
  let lat = Array.init n (fun u -> Arch.latency arch g.nodes.(u).op) in
  let pc = Array.make n 0 and sc = Array.make n 0 in
  List.iter
    (fun (e : Dfg.edge) ->
      pc.(e.dst) <- pc.(e.dst) + 1;
      sc.(e.src) <- sc.(e.src) + 1)
    g.edges;
  let preds = Array.init n (fun u -> Array.make pc.(u) 0) in
  let succs = Array.init n (fun u -> Array.make sc.(u) 0) in
  let pi = Array.make n 0 and si = Array.make n 0 in
  List.iter
    (fun (e : Dfg.edge) ->
      let packed d v = (v lsl 8) lor (d land 0xff) in
      preds.(e.dst).(pi.(e.dst)) <- packed e.distance e.src;
      pi.(e.dst) <- pi.(e.dst) + 1;
      succs.(e.src).(si.(e.src)) <- packed e.distance e.dst;
      si.(e.src) <- si.(e.src) + 1)
    g.edges;
  let cand_tiles =
    Array.init n (fun u ->
        let op = g.nodes.(u).op in
        let c = ref 0 in
        for t = 0 to tiles - 1 do
          if Arch.supports arch ~tile:t op then incr c
        done;
        let a = Array.make !c 0 in
        let i = ref 0 in
        for t = 0 to tiles - 1 do
          if Arch.supports arch ~tile:t op then begin
            a.(!i) <- t;
            incr i
          end
        done;
        a)
  in
  let dist = Arch.distance_matrix arch in
  let topo = Dfg.topo_order g in
  (* priority: height = longest latency path to any sink over forward edges *)
  let height = Array.make n 0 in
  List.iter
    (fun u ->
      height.(u) <- lat.(u);
      Array.iter
        (fun p ->
          let v = p lsr 8 and d = p land 0xff in
          if d = 0 then height.(u) <- Stdlib.max height.(u) (lat.(u) + height.(v)))
        succs.(u))
    (List.rev topo);
  (* Phis have no forward predecessors, so a naive first placement at cycle 0
     imposes a back-edge deadline their source cannot meet when the
     recurrence body is long; anchor each phi's *first* placement near the
     ASAP finish of its loop-carried source (ejected phis re-place from
     their then-known constraints). *)
  let asap = Array.make n 0 in
  List.iter
    (fun u ->
      Array.iter
        (fun p ->
          let v = p lsr 8 and d = p land 0xff in
          if d = 0 then asap.(v) <- Stdlib.max asap.(v) (asap.(u) + lat.(u)))
        succs.(u))
    topo;
  let phi_anchor = Array.make n 0 in
  List.iter
    (fun (e : Dfg.edge) ->
      if e.distance > 0 && e.src <> e.dst then
        phi_anchor.(e.dst) <-
          Stdlib.max phi_anchor.(e.dst) (asap.(e.src) + lat.(e.src)))
    g.edges;
  let prio = Array.init n (fun u -> (height.(u) * (n + 1)) + (n - u)) in
  {
    n;
    tiles;
    arch_name = arch.Arch.name;
    lat;
    preds;
    succs;
    cand_tiles;
    dist;
    phi_anchor;
    prio;
  }

(* Rau-style iterative modulo scheduling with ejection, extended with spatial
   placement: a schedule slot is a (cycle, tile) pair; operand transport over
   the mesh adds Manhattan-distance cycles to dependence latencies. *)
let try_map_ctx ctx (g : Dfg.t) ~salt ii =
  Atomic.incr stat_ii_attempts;
  let {
    n;
    tiles;
    arch_name;
    lat;
    preds;
    succs;
    cand_tiles;
    dist;
    phi_anchor;
    prio;
  } =
    ctx
  in
  let time = Array.make n (-1) in
  let tile_of = Array.make n (-1) in
  let never_scheduled = Array.make n true in
  let prev_forced = Array.make n (-1) in
  let occupant = Array.make (tiles * ii) (-1) in
  let occ_count = Array.make tiles 0 in
  let budget = ref (Stdlib.max 1000 (50 * n)) in
  (* worklist: binary max-heap on the precomputed priority.  Every unplaced
     node has exactly one live entry (ejection re-pushes, and [eject] is a
     no-op on unplaced nodes), so the top is always the max-height,
     lowest-id unplaced node — the same pick the old O(n^2) scan made. *)
  let heap = Array.make (Stdlib.max n 1) 0 in
  let hsize = ref 0 in
  let push u =
    let i = ref !hsize in
    incr hsize;
    let continue = ref true in
    while !continue && !i > 0 do
      let parent = (!i - 1) / 2 in
      if prio.(heap.(parent)) < prio.(u) then begin
        heap.(!i) <- heap.(parent);
        i := parent
      end
      else continue := false
    done;
    heap.(!i) <- u
  in
  let pop () =
    if !hsize = 0 then -1
    else begin
      let top = heap.(0) in
      decr hsize;
      if !hsize > 0 then begin
        let u = heap.(!hsize) in
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let best = ref !i in
          if l < !hsize && prio.(heap.(l)) > prio.(u) then best := l;
          if
            r < !hsize
            && prio.(heap.(r))
               > prio.(if !best = !i then u else heap.(!best))
          then best := r;
          if !best = !i then begin
            heap.(!i) <- u;
            continue := false
          end
          else begin
            heap.(!i) <- heap.(!best);
            i := !best
          end
        done
      end;
      top
    end
  in
  for u = 0 to n - 1 do
    push u
  done;
  let eject u =
    if time.(u) >= 0 then begin
      Atomic.incr stat_backtracks;
      let t = tile_of.(u) in
      occupant.((t * ii) + (time.(u) mod ii)) <- -1;
      occ_count.(t) <- occ_count.(t) - 1;
      time.(u) <- -1;
      tile_of.(u) <- -1;
      push u
    end
  in
  let keys = Array.make tiles 0 in
  let place u =
    let pr = preds.(u) in
    let npr = Array.length pr in
    let floor_time = if never_scheduled.(u) then phi_anchor.(u) else 0 in
    (* earliest start per tile from placed predecessors (either direction) *)
    let earliest tl =
      let acc = ref floor_time in
      for i = 0 to npr - 1 do
        let p = pr.(i) lsr 8 and d = pr.(i) land 0xff in
        if p <> u && time.(p) >= 0 then begin
          let c =
            time.(p) + lat.(p) + dist.((tile_of.(p) * tiles) + tl) - (d * ii)
          in
          if c > !acc then acc := c
        end
      done;
      !acc
    in
    let cand = cand_tiles.(u) in
    let ncand = Array.length cand in
    if ncand = 0 then raise (Unmappable (g.label ^ ": op supported by no tile"));
    (* candidate order: (routing cost to placed preds, occupancy, tile id),
       packed into one int per tile so the sort compares unboxed ints *)
    for ci = 0 to ncand - 1 do
      let t = cand.(ci) in
      let cost = ref 0 in
      for i = 0 to npr - 1 do
        let p = pr.(i) lsr 8 in
        if time.(p) >= 0 then cost := !cost + dist.((tile_of.(p) * tiles) + t)
      done;
      keys.(ci) <- ((((!cost * 65536) + occ_count.(t)) * 65536) + t)
    done;
    (* in-place insertion sort over the packed keys: lexicographic
       (cost, occupancy, tile), no tuple or list allocation *)
    for i = 1 to ncand - 1 do
      let k = keys.(i) in
      let j = ref (i - 1) in
      while !j >= 0 && keys.(!j) > k do
        keys.(!j + 1) <- keys.(!j);
        decr j
      done;
      keys.(!j + 1) <- k
    done;
    (* salt rotates the candidate order (kept as a start offset) *)
    let rot = if salt <= 0 then 0 else salt mod ncand in
    let tile_at j = keys.((j + rot) mod ncand) land 65535 in
    (* latest feasible issue per tile, from placed successors (deadline-aware
       pass 1 — placements that would immediately eject a consumer are worse
       than a slightly later slot that would not) *)
    let su = succs.(u) in
    let nsu = Array.length su in
    let latest tl =
      let acc = ref max_int in
      for i = 0 to nsu - 1 do
        let v = su.(i) lsr 8 and d = su.(i) land 0xff in
        if v <> u && time.(v) >= 0 then begin
          let c =
            time.(v) + (d * ii) - lat.(u) - dist.((tl * tiles) + tile_of.(v))
          in
          if c < !acc then acc := c
        end
      done;
      !acc
    in
    (* pass 1: a free slot within one II window of the earliest start that
       also meets every placed successor's deadline *)
    let found_tile = ref (-1) and found_t = ref 0 in
    let j = ref 0 in
    while !found_tile < 0 && !j < ncand do
      let tl = tile_at !j in
      let e = earliest tl in
      let lim = Stdlib.min (e + ii - 1) (latest tl) in
      let t = ref e in
      while !found_tile < 0 && !t <= lim do
        if occupant.((tl * ii) + (!t mod ii)) = -1 then begin
          found_tile := tl;
          found_t := !t
        end;
        incr t
      done;
      incr j
    done;
    let tl, t =
      if !found_tile >= 0 then (!found_tile, !found_t)
      else begin
        (* force placement, ejecting the occupant (Rau's rule: never at the
           same slot as the previous forced attempt) *)
        let tl = tile_at 0 in
        let e = earliest tl in
        let t = if e > prev_forced.(u) then e else prev_forced.(u) + 1 in
        prev_forced.(u) <- t;
        (tl, t)
      end
    in
    let slot = (tl * ii) + (t mod ii) in
    (match occupant.(slot) with -1 -> () | v -> eject v);
    occupant.(slot) <- u;
    occ_count.(tl) <- occ_count.(tl) + 1;
    time.(u) <- t;
    tile_of.(u) <- tl;
    never_scheduled.(u) <- false;
    (* eject placed successors whose dependence is now violated *)
    for i = 0 to nsu - 1 do
      let v = su.(i) lsr 8 and d = su.(i) land 0xff in
      if
        v <> u
        && time.(v) >= 0
        && time.(v) < t + lat.(u) + dist.((tl * tiles) + tile_of.(v)) - (d * ii)
      then eject v
    done;
    (* self-loop sanity: a fused accumulator needs lat <= ii *)
    for i = 0 to nsu - 1 do
      let v = su.(i) lsr 8 and d = su.(i) land 0xff in
      if v = u && d > 0 && lat.(u) > d * ii then eject u
    done
  in
  let rec loop () =
    let u = pop () in
    if u = -1 then true
    else if !budget <= 0 then false
    else begin
      decr budget;
      place u;
      loop ()
    end
  in
  if not (loop ()) then None
  else begin
    let schedule = Array.init n (fun u -> { time = time.(u); tile = tile_of.(u) }) in
    let makespan = ref 0 in
    for u = 0 to n - 1 do
      if time.(u) + lat.(u) > !makespan then makespan := time.(u) + lat.(u)
    done;
    let routed_hops =
      List.fold_left
        (fun acc (e : Dfg.edge) ->
          acc + dist.((tile_of.(e.src) * tiles) + tile_of.(e.dst)))
        0 g.edges
    in
    Some { ii; schedule; makespan = !makespan; routed_hops; arch_name }
  end

let max_salt = 3

(* ------------------------------------------------------------ warm start *)

(* Re-validate a sibling design point's schedule on this architecture from
   first principles: placements in range, tile capability, one node per
   (tile, cycle mod II) slot, every dependence inequality under *this*
   mesh's distances, and recomputed makespan / routed_hops.  The caller's
   [validate] (the independent verifier) then gets the final say.

   Nodes whose tile binding breaks on the new arch — a CoT-share shift
   retypes a few tiles, invalidating the placements that used them — get a
   greedy repair before the hint is rejected: the time schedule is kept and
   only the broken nodes re-bind, each to the supporting free tile that
   satisfies its dependence inequalities against every already-bound
   neighbor at minimum added transport.  The full edge check below still
   runs over the repaired binding, so a greedy miss is a reject, never a
   bad schedule. *)
let rebuild_hint arch ctx (g : Dfg.t) (h : mapping) =
  let { n; tiles; lat; dist; preds; succs; cand_tiles; _ } = ctx in
  if Array.length h.schedule <> n || h.ii < 1 then None
  else begin
    let ii = h.ii in
    let time = Array.map (fun (p : placement) -> p.time) h.schedule in
    let tile = Array.map (fun (p : placement) -> p.tile) h.schedule in
    let ok = ref true in
    Array.iter (fun t -> if t < 0 then ok := false) time;
    if not !ok then None
    else begin
      let occupant = Array.make (tiles * ii) (-1) in
      let broken = ref [] in
      for u = 0 to n - 1 do
        let tl = tile.(u) in
        if
          tl < 0 || tl >= tiles
          || not (Arch.supports arch ~tile:tl g.nodes.(u).op)
        then begin
          tile.(u) <- -1;
          broken := u :: !broken
        end
        else begin
          let slot = (tl * ii) + (time.(u) mod ii) in
          if occupant.(slot) >= 0 then begin
            tile.(u) <- -1;
            broken := u :: !broken
          end
          else occupant.(slot) <- u
        end
      done;
      let feasible u tl t =
        occupant.((tl * ii) + (t mod ii)) = -1
        && Array.for_all
             (fun p ->
               let v = p lsr 8 and d = p land 0xff in
               v = u || tile.(v) < 0
               || t
                  >= time.(v) + lat.(v)
                     + dist.((tile.(v) * tiles) + tl)
                     - (d * ii))
             preds.(u)
        && Array.for_all
             (fun p ->
               let v = p lsr 8 and d = p land 0xff in
               v = u || tile.(v) < 0
               || time.(v)
                  >= t + lat.(u)
                     + dist.((tl * tiles) + tile.(v))
                     - (d * ii))
             succs.(u)
      in
      let hops_around u tl =
        let acc = ref 0 in
        Array.iter
          (fun p ->
            let v = p lsr 8 in
            if v <> u && tile.(v) >= 0 then
              acc := !acc + dist.((tile.(v) * tiles) + tl))
          preds.(u);
        Array.iter
          (fun p ->
            let v = p lsr 8 in
            if v <> u && tile.(v) >= 0 then
              acc := !acc + dist.((tl * tiles) + tile.(v)))
          succs.(u);
        !acc
      in
      (* The broken set is small (a share shift retypes a handful of tiles),
         so re-bind it exactly: backtracking over the broken nodes in index
         order, candidates tried cheapest-transport-first.  A candidate may
         also shift the node's time by a few multiples of II — the slot
         residue (and thus steady-state occupancy) is unchanged, only the
         dependence inequalities move — which rescues placements whose new
         route is longer than the old slack.  Constraints against
         still-unbound brethren are deferred to the later node's turn, so a
         complete assignment satisfies every pair.  A small trial budget
         bounds the worst case (a hint broken nearly everywhere is cheaper
         to reject than to solve exactly). *)
      let trials = ref 256 in
      let rec rebind = function
        | [] -> true
        | _ when !trials <= 0 -> false
        | u :: rest ->
            let t0 = time.(u) in
            let cands =
              List.concat_map
                (fun k ->
                  let t = t0 + (k * ii) in
                  if t < 0 then []
                  else
                    Array.to_list cand_tiles.(u)
                    |> List.filter (fun tl -> feasible u tl t)
                    |> List.map (fun tl -> (abs k, hops_around u tl, tl, t)))
                [ 0; 1; -1; 2; -2 ]
              |> List.sort (fun (k1, h1, tl1, t1) (k2, h2, tl2, t2) ->
                     match Int.compare k1 k2 with
                     | 0 -> (
                         match Int.compare h1 h2 with
                         | 0 -> (
                             match Int.compare tl1 tl2 with
                             | 0 -> Int.compare t1 t2
                             | c -> c)
                         | c -> c)
                     | c -> c)
            in
            List.exists
              (fun (_, _, tl, t) ->
                decr trials;
                !trials >= 0
                &&
                begin
                  tile.(u) <- tl;
                time.(u) <- t;
                  occupant.((tl * ii) + (t mod ii)) <- u;
                  if rebind rest then true
                  else begin
                    occupant.((tl * ii) + (t mod ii)) <- -1;
                    tile.(u) <- -1;
                    time.(u) <- t0;
                    false
                  end
                end)
              cands
      in
      if not (rebind (List.rev !broken)) then ok := false;
      if !ok then
        List.iter
          (fun (e : Dfg.edge) ->
            if e.src = e.dst then begin
              if lat.(e.src) > e.distance * ii then ok := false
            end
            else if
              time.(e.dst)
              < time.(e.src) + lat.(e.src)
                + dist.((tile.(e.src) * tiles) + tile.(e.dst))
                - (e.distance * ii)
            then ok := false)
          g.edges;
      if not !ok then None
      else begin
        let makespan = ref 0 in
        for u = 0 to n - 1 do
          if time.(u) + lat.(u) > !makespan then makespan := time.(u) + lat.(u)
        done;
        let routed_hops =
          List.fold_left
            (fun acc (e : Dfg.edge) ->
              acc + dist.((tile.(e.src) * tiles) + tile.(e.dst)))
            0 g.edges
        in
        Some
          {
            ii;
            schedule =
              Array.init n (fun u -> { time = time.(u); tile = tile.(u) });
            makespan = !makespan;
            routed_hops;
            arch_name = arch.Arch.name;
          }
      end
    end
  end

(* --------------------------------------------------------------- search *)

(* Distinct LUT tables the loop references (fusion may have subsumed the
   lookup into a fused node, so scan members).  Their summed ROM bytes are
   tile-resident state: every tile that can execute the lookup keeps its own
   copy of the table, so the whole set must fit one tile's ROM budget. *)
let lut_names g =
  let names = ref [] in
  Array.iter
    (fun (n : Dfg.node) ->
      List.iter
        (function
          | Op.Lut name when not (List.mem name !names) -> names := name :: !names
          | _ -> ())
        n.Dfg.members)
    g.Dfg.nodes;
  List.rev !names

let lut_rom_bytes g = Nm.Lut_catalog.footprint_bytes (lut_names g)

let check_lut_capacity arch g =
  let rom = lut_rom_bytes g in
  if rom > arch.Arch.lut_capacity_bytes then
    raise
      (Unmappable
         (Printf.sprintf
            "%s: LUT tables (%s) need %d ROM bytes, tile capacity is %d"
            g.Dfg.label
            (String.concat ", " (lut_names g))
            rom arch.Arch.lut_capacity_bytes))

let map_dfg ?(max_ii = 128) ?hint ?(validate = fun (_ : mapping) -> true) arch g
    =
  check_lut_capacity arch g;
  let ctx = make_ctx arch g in
  let start = min_ii arch g in
  let cold ?ceiling () =
    (* a few salted attempts per II escape deterministic ejection livelocks
       (the phi/source pair chasing each other through the same tile order).
       Salt 0 runs first on its own — the common immediate success — and only
       the retry salts fan out across the domain pool; the accepted mapping is
       always the lowest successful salt, matching the sequential order. *)
    let retry_salts = Array.init max_salt (fun i -> i + 1) in
    let attempts ii =
      match try_map_ctx ctx g ~salt:0 ii with
      | Some m -> Some m
      | None ->
          if Parallel.in_parallel () || Parallel.size () <= 1 then
            (* sequential retries keep the historical early exit *)
            let rec go salt =
              if salt > max_salt then None
              else
                match try_map_ctx ctx g ~salt ii with
                | Some m -> Some m
                | None -> go (salt + 1)
            in
            go 1
          else
            let results =
              Parallel.parallel_map_array
                (fun salt -> try_map_ctx ctx g ~salt ii)
                retry_salts
            in
            Array.fold_left
              (fun acc r -> match acc with Some _ -> acc | None -> r)
              None results
    in
    let unmappable () =
      raise
        (Unmappable
           (Printf.sprintf "%s: no II <= %d on %s" g.Dfg.label max_ii
              arch.Arch.name))
    in
    (* [ceiling], when present, is a mapping already known feasible (and
       externally validated) at [ceiling.ii]: the search never attempts at
       or above that II — reaching it returns the ceiling itself. *)
    let cap, cap_m =
      match ceiling with
      | Some (m : mapping) -> (m.ii, Some m)
      | None -> (max_ii, None)
    in
    let at_cap () = match cap_m with Some m -> m | None -> unmappable () in
    (* Geometric escalation with binary refinement: on failure the step
       doubles (start, +1, +2, +4, ...) so a hard kernel stops paying one
       full failed Rau search per skipped II, then a binary search between
       the last failure and the first success recovers the smallest
       schedulable II.  On kernels whose failing span is <= 2 levels (the
       whole current roster) the visited IIs — and therefore the accepted
       (II, salt) mapping — are identical to the old linear scan. *)
    let rec refine lf hi m =
      (* invariant: lf failed, hi succeeded with [m] *)
      if hi <= lf + 1 then m
      else
        let mid = (lf + hi) / 2 in
        match attempts mid with
        | Some m' -> refine lf mid m'
        | None -> refine mid hi m
    in
    let rec escalate prev_fail step =
      let ii = Stdlib.min (prev_fail + step) cap in
      if ii = cap && cap_m <> None then refine prev_fail cap (at_cap ())
      else
        match attempts ii with
        | Some m -> refine prev_fail ii m
        | None -> if ii >= cap then at_cap () else escalate ii (2 * step)
    in
    if start > cap then at_cap ()
    else if start = cap && cap_m <> None then at_cap ()
    else
      match attempts start with
      | Some m -> m
      | None -> if start >= cap then at_cap () else escalate start 1
  in
  match hint with
  | None -> cold ()
  | Some h -> (
      (* Warm-start protocol: the sibling's schedule must re-validate from
         first principles on this arch and pass the caller's independent
         [validate].  A hint at exactly [min_ii] is accepted outright (no
         cold search can beat it); a hint at a higher II becomes a search
         ceiling — the cold search runs only below it and falls back to the
         hint when every lower II fails, so the expensive failing levels at
         and above a known-feasible II are never paid again.  Anything else
         is a reject and searches cold. *)
      match rebuild_hint arch ctx g h with
      | Some m when m.ii <= max_ii && validate m ->
          if m.ii = start then begin
            Atomic.incr stat_warm_hits;
            m
          end
          else begin
            let r = cold ~ceiling:m () in
            if r == m then Atomic.incr stat_warm_hits
            else Atomic.incr stat_warm_rejects;
            r
          end
      | _ ->
          Atomic.incr stat_warm_rejects;
          cold ())

let loop_cycles m ~trips = if trips <= 0 then 0 else m.makespan + ((trips - 1) * m.ii)

let utilization m g arch =
  float_of_int (Dfg.node_count g) /. float_of_int (m.ii * Arch.tiles arch)
