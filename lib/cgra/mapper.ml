module Op = Picachu_ir.Op
module Dfg = Picachu_dfg.Dfg
module Analysis = Picachu_dfg.Analysis
module Parallel = Picachu_parallel.Parallel

type placement = { time : int; tile : int }

type mapping = {
  ii : int;
  schedule : placement array;
  makespan : int;
  routed_hops : int;
  arch_name : string;
}

exception Unmappable of string

(* Observability hooks for the compilation pipeline: how hard did the II
   search work?  Plain process-global atomics — attribution to a particular
   compile is the caller's business (the pipeline snapshots totals), so
   concurrent mapping on the domain pool stays exact. *)
type counters = { ii_attempts : int; backtracks : int }

let stat_ii_attempts = Atomic.make 0
let stat_backtracks = Atomic.make 0

let counters () =
  {
    ii_attempts = Atomic.get stat_ii_attempts;
    backtracks = Atomic.get stat_backtracks;
  }

let reset_counters () =
  Atomic.set stat_ii_attempts 0;
  Atomic.set stat_backtracks 0

let res_mii arch (g : Dfg.t) =
  (* group nodes by the exact set of tiles able to execute them *)
  let tbl = Hashtbl.create 8 in
  Array.iter
    (fun (node : Dfg.node) ->
      let supp = ref [] in
      for t = Arch.tiles arch - 1 downto 0 do
        if Arch.supports arch ~tile:t node.op then supp := t :: !supp
      done;
      let key = !supp in
      Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    g.nodes;
  let bound = ref 1 in
  Hashtbl.iter
    (fun tiles count ->
      let k = List.length tiles in
      if k = 0 then
        raise (Unmappable (Printf.sprintf "%s: op supported by no tile" g.label));
      bound := Stdlib.max !bound ((count + k - 1) / k))
    tbl;
  let total = Dfg.node_count g and tiles = Arch.tiles arch in
  Stdlib.max !bound ((total + tiles - 1) / tiles)

let min_ii arch g = Stdlib.max (res_mii arch g) (Analysis.rec_mii g)

(* Rau-style iterative modulo scheduling with ejection, extended with spatial
   placement: a schedule slot is a (cycle, tile) pair; operand transport over
   the mesh adds Manhattan-distance cycles to dependence latencies. *)
(* [rotate k l] moves the first [k mod length] elements to the back — a
   single split instead of [k] quadratic [rest @ [x]] appends *)
let rotate k l =
  if k <= 0 || l = [] then l
  else
    let n = List.length l in
    let k = k mod n in
    if k = 0 then l
    else
      let rec split i acc rest =
        if i = 0 then rest @ List.rev acc
        else
          match rest with
          | x :: tl -> split (i - 1) (x :: acc) tl
          | [] -> assert false
      in
      split k [] l

let try_map ?(salt = 0) arch (g : Dfg.t) ii =
  Atomic.incr stat_ii_attempts;
  let n = Dfg.node_count g in
  let tiles = Arch.tiles arch in
  let lat u = Arch.latency arch g.nodes.(u).op in
  (* priority: height = longest latency path to any sink over forward edges *)
  let height = Array.make n 0 in
  List.iter
    (fun u ->
      height.(u) <- lat u;
      List.iter
        (fun ((v, d) : int * int) ->
          if d = 0 then height.(u) <- Stdlib.max height.(u) (lat u + height.(v)))
        (Dfg.succs g u))
    (List.rev (Dfg.topo_order g));
  let sched = Array.make n None in
  let never_scheduled = Array.make n true in
  (* Phis have no forward predecessors, so a naive first placement at cycle 0
     imposes a back-edge deadline their source cannot meet when the
     recurrence body is long; anchor each phi's *first* placement near the
     ASAP finish of its loop-carried source (ejected phis re-place from
     their then-known constraints). *)
  let asap = Array.make n 0 in
  List.iter
    (fun u ->
      List.iter
        (fun ((v, d) : int * int) ->
          if d = 0 then asap.(v) <- Stdlib.max asap.(v) (asap.(u) + lat u))
        (Dfg.succs g u))
    (Dfg.topo_order g);
  let phi_anchor = Array.make n 0 in
  List.iter
    (fun (e : Dfg.edge) ->
      if e.distance > 0 && e.src <> e.dst then
        phi_anchor.(e.dst) <- Stdlib.max phi_anchor.(e.dst) (asap.(e.src) + lat e.src))
    g.edges;
  let prev_forced = Array.make n (-1) in
  let occupant = Array.make_matrix tiles ii (-1) in
  let budget = ref (Stdlib.max 1000 (50 * n)) in
  (* worklist: simple repeated max-height scan (graphs are small) *)
  let pick_unplaced () =
    let best = ref (-1) in
    for u = 0 to n - 1 do
      if sched.(u) = None
         && (!best = -1
             || height.(u) > height.(!best)
             || (height.(u) = height.(!best) && u < !best))
      then best := u
    done;
    !best
  in
  let eject u =
    match sched.(u) with
    | None -> ()
    | Some { time; tile } ->
        Atomic.incr stat_backtracks;
        occupant.(tile).(time mod ii) <- -1;
        sched.(u) <- None
  in
  let dep_latency p tile_p tile_u d =
    lat p + Arch.distance arch tile_p tile_u - (d * ii)
  in
  let place u =
    (* earliest start per tile from placed predecessors (either direction) *)
    let preds = Dfg.preds g u in
    let floor_time = if never_scheduled.(u) then phi_anchor.(u) else 0 in
    let earliest tile =
      List.fold_left
        (fun acc ((p, d) : int * int) ->
          match sched.(p) with
          | Some sp when p <> u -> Stdlib.max acc (sp.time + dep_latency p sp.tile tile d)
          | _ -> acc)
        floor_time preds
    in
    let cands = ref [] in
    for t = 0 to tiles - 1 do
      if Arch.supports arch ~tile:t g.nodes.(u).op then begin
        let cost =
          List.fold_left
            (fun acc ((p, _) : int * int) ->
              match sched.(p) with
              | Some sp -> acc + Arch.distance arch sp.tile t
              | None -> acc)
            0 preds
        in
        let occupancy =
          Array.fold_left (fun acc o -> if o >= 0 then acc + 1 else acc) 0 occupant.(t)
        in
        cands := ((cost, occupancy, t), t) :: !cands
      end
    done;
    let cands = rotate salt (List.sort compare !cands) in
    if cands = [] then raise (Unmappable (g.label ^ ": op supported by no tile"));
    (* latest feasible issue per tile, from placed successors (deadline-aware
       pass 1 — placements that would immediately eject a consumer are worse
       than a slightly later slot that would not) *)
    let latest tile =
      List.fold_left
        (fun acc ((v, d) : int * int) ->
          if v = u then acc
          else
            match sched.(v) with
            | Some sv ->
                Stdlib.min acc
                  (sv.time + (d * ii) - lat u - Arch.distance arch tile sv.tile)
            | None -> acc)
        max_int (Dfg.succs g u)
    in
    (* pass 1: a free slot within one II window of the earliest start that
       also meets every placed successor's deadline *)
    let found = ref None in
    List.iter
      (fun (_, tile) ->
        if !found = None then
          let e = earliest tile in
          let lim = Stdlib.min (e + ii - 1) (latest tile) in
          let t = ref e in
          while !found = None && !t <= lim do
            if occupant.(tile).(!t mod ii) = -1 then found := Some (tile, !t);
            incr t
          done)
      cands;
    let tile, t =
      match !found with
      | Some tt -> tt
      | None ->
          (* force placement, ejecting the occupant (Rau's rule: never at the
             same slot as the previous forced attempt) *)
          let _, tile = List.hd cands in
          let e = earliest tile in
          let t = if e > prev_forced.(u) then e else prev_forced.(u) + 1 in
          prev_forced.(u) <- t;
          (tile, t)
    in
    (match occupant.(tile).(t mod ii) with -1 -> () | v -> eject v);
    occupant.(tile).(t mod ii) <- u;
    sched.(u) <- Some { time = t; tile };
    never_scheduled.(u) <- false;
    (* eject placed successors whose dependence is now violated *)
    List.iter
      (fun ((v, d) : int * int) ->
        if v <> u then
          match sched.(v) with
          | Some sv when sv.time < t + dep_latency u tile sv.tile d -> eject v
          | _ -> ())
      (Dfg.succs g u);
    (* self-loop sanity: a fused accumulator needs lat <= ii *)
    List.iter
      (fun ((v, d) : int * int) ->
        if v = u && d > 0 && lat u > d * ii then eject u)
      (Dfg.succs g u)
  in
  let rec loop () =
    let u = pick_unplaced () in
    if u = -1 then true
    else if !budget <= 0 then false
    else begin
      decr budget;
      place u;
      loop ()
    end
  in
  if not (loop ()) then None
  else begin
    let schedule =
      Array.init n (fun u ->
          match sched.(u) with Some s -> s | None -> { time = -1; tile = -1 })
    in
    let makespan =
      Array.to_list schedule
      |> List.mapi (fun u (s : placement) -> s.time + lat u)
      |> List.fold_left Stdlib.max 0
    in
    let routed_hops =
      List.fold_left
        (fun acc (e : Dfg.edge) ->
          acc + Arch.distance arch schedule.(e.src).tile schedule.(e.dst).tile)
        0 g.edges
    in
    Some { ii; schedule; makespan; routed_hops; arch_name = arch.Arch.name }
  end

let max_salt = 3

let map_dfg ?(max_ii = 128) arch g =
  let start = min_ii arch g in
  (* a few salted attempts per II escape deterministic ejection livelocks
     (the phi/source pair chasing each other through the same tile order).
     Salt 0 runs first on its own — the common immediate success — and only
     the retry salts fan out across the domain pool; the accepted mapping is
     always the lowest successful salt, matching the sequential order. *)
  let retry_salts = Array.init max_salt (fun i -> i + 1) in
  let attempts ii =
    match try_map ~salt:0 arch g ii with
    | Some m -> Some m
    | None ->
        if Parallel.in_parallel () || Parallel.size () <= 1 then
          (* sequential retries keep the historical early exit *)
          let rec go salt =
            if salt > max_salt then None
            else
              match try_map ~salt arch g ii with
              | Some m -> Some m
              | None -> go (salt + 1)
          in
          go 1
        else
          let results =
            Parallel.parallel_map_array (fun salt -> try_map ~salt arch g ii) retry_salts
          in
          Array.fold_left
            (fun acc r -> match acc with Some _ -> acc | None -> r)
            None results
  in
  let rec go ii =
    if ii > max_ii then
      raise
        (Unmappable
           (Printf.sprintf "%s: no II <= %d on %s" g.Dfg.label max_ii arch.Arch.name))
    else match attempts ii with Some m -> m | None -> go (ii + 1)
  in
  go start

let loop_cycles m ~trips = if trips <= 0 then 0 else m.makespan + ((trips - 1) * m.ii)

let utilization m g arch =
  float_of_int (Dfg.node_count g) /. float_of_int (m.ii * Arch.tiles arch)
