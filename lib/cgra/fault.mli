(** Deterministic, seeded fault injection for the cycle-level CGRA model.

    Real accelerator deployments treat transient faults — particle strikes in
    register files, marginal timing in functional units, dropped mesh
    transfers — as a first-class system-evaluation axis.  This module defines
    the fault models the executor can sample while running a mapped loop:

    - {b RF read disturbance}: a register-file read returns the stored value
      with one mantissa bit flipped (transient: the stored value is intact);
    - {b FU output corruption}: a functional unit's result latches with one
      mantissa bit flipped, and the corrupted value propagates to consumers;
    - {b LUT entry corruption}: a CoT table lookup returns a value with a
      flipped bit (a corrupted ROM word);
    - {b NoC transfer drop}: a mesh transfer between distinct tiles is lost,
      and the consumer reads the previous iteration's value (stale data) or
      zero on the first iteration.

    Bit flips are confined to the 52 mantissa bits so a single fault perturbs
    a value without manufacturing NaN/infinity out of finite data — the
    regime where silent data corruption is hardest to detect, which is what
    the DMR campaign measures.

    All sampling flows through a splitmix64 generator seeded from the config
    (plus a per-run salt), so a fault campaign is reproducible bit-for-bit
    and independent of domain-pool scheduling.  A config with every rate at
    [0.0] draws no random numbers at all; the executor's output is then
    byte-identical to the hook-free path (pinned in the test suite). *)

type config = {
  seed : int;
  rf_rate : float;  (** per-register-read flip probability *)
  fu_rate : float;  (** per-FU-result flip probability *)
  lut_rate : float;  (** per-LUT-lookup flip probability *)
  noc_rate : float;  (** per-mesh-transfer drop probability *)
}

val none : config
(** All rates zero (seed 0): injection disabled. *)

val uniform : ?seed:int -> float -> config
(** [uniform ~seed r] sets every site's rate to [r]. Requires [0 <= r <= 1]. *)

val enabled : config -> bool
(** True iff any rate is positive. *)

val of_env : unit -> config
(** [PICACHU_FAULT_RATE] (non-negative float, default 0 — disabled) applied
    uniformly, seeded by [PICACHU_FAULT_SEED] (integer, default 0).  Raises
    [Invalid_argument] on malformed values. *)

type counts = { rf : int; fu : int; lut : int; noc : int }

val total : counts -> int
val no_faults : counts
val add : counts -> counts -> counts

type injector
(** Mutable per-run sampling state plus injection counters. *)

val injector : ?salt:int -> config -> injector
(** Fresh sampling stream for one execution; [salt] derives independent
    streams from one config (e.g. the two DMR copies, or retry rounds). *)

val config : injector -> config
val counts : injector -> counts
(** Faults injected so far through this injector. *)

(** {2 Hooks} — called by {!Executor} at the matching sites. Each returns the
    (possibly corrupted) value and bumps the corresponding counter when a
    fault fires. With the site's rate at [0.0] the value is returned
    untouched and no random number is drawn. *)

val rf_read : injector -> float -> float
val fu_output : injector -> float -> float
val lut_output : injector -> float -> float

val noc_drop : injector -> bool
(** True when this mesh transfer is dropped (counter bumped); the caller
    substitutes the stale value. *)
