(** Modulo-scheduling mapper (paper §4.3 "DFG Mapping").

    Maps a DFG onto the CGRA's modulo routing resource graph using Rau-style
    iterative modulo scheduling with ejection, extended with spatial
    placement: a schedule slot is a (cycle, tile) pair, each tile issues one
    operation per cycle modulo II, and operand transport over the mesh adds
    Manhattan-distance cycles to every dependence.  The search starts at
    [max(ResMII, RecMII)] and raises II until the scheduler converges within
    its ejection budget, honouring:

    - tile capability (heterogeneous FU sets, §4.2.1),
    - memory-port columns for loads/stores,
    - loop-carried dependences [t(phi) >= t(src) + lat + hops - II*distance].

    Simplifications, documented in DESIGN.md: mesh links are modelled by
    distance latency (no per-hop slot contention), and values arriving early
    wait in the consumer's register file.  Like the paper's own compiler the
    heuristic is not optimal (their §5.3.4 blames the mapper for sub-linear
    4x8 scaling). *)

module Dfg = Picachu_dfg.Dfg

type placement = { time : int; tile : int }

type mapping = {
  ii : int;
  schedule : placement array;  (** indexed by DFG node id *)
  makespan : int;  (** completion time of the first iteration *)
  routed_hops : int;  (** total mesh hops used (wire-pressure metric) *)
  arch_name : string;
}

exception Unmappable of string

type counters = {
  ii_attempts : int;
  backtracks : int;
  warm_hits : int;
  warm_rejects : int;
}
(** Process-global search-effort totals: [ii_attempts] counts scheduling
    attempts (one per (II, salt) pair tried), [backtracks] counts node
    ejections inside those attempts, and [warm_hits] / [warm_rejects] count
    warm-start hints accepted and discarded.  Atomics — exact under the
    domain pool; the compilation pipeline snapshots them for its per-pass
    stats. *)

val counters : unit -> counters
val reset_counters : unit -> unit

val res_mii : Arch.t -> Dfg.t -> int
(** Resource-constrained lower bound on II (capability-class aware). *)

val transport_mii : Arch.t -> Dfg.t -> int
(** Transport-aware recurrence lower bound.  Around any loop-carried cycle
    the mapper enforces [sum (lat + hops) <= II * distance]; when the back
    edge's endpoints have disjoint capability classes the operand must pay
    at least the minimum inter-class mesh distance, so
    [ceil((cycle_latency + min_hop) / distance)] is a true lower bound on
    the II of every schedule the mapper could accept. *)

val min_ii : Arch.t -> Dfg.t -> int
(** [max (res_mii, rec_mii, transport_mii)]. *)

val lut_names : Dfg.t -> string list
(** Distinct LUT tables the loop references ([Op.Lut] operands, including
    ops subsumed into fused nodes), in first-reference order. *)

val lut_rom_bytes : Dfg.t -> int
(** Summed ROM bytes of {!lut_names} per {!Picachu_numerics.Lut_catalog} —
    the tile-resident table state the loop's mapping keeps loaded.  Every
    tile able to execute the lookup holds its own copy, so {!map_dfg}
    rejects the DFG ([Unmappable]) when this exceeds
    [Arch.lut_capacity_bytes]. *)

val map_dfg :
  ?max_ii:int ->
  ?hint:mapping ->
  ?validate:(mapping -> bool) ->
  Arch.t ->
  Dfg.t ->
  mapping
(** Raises [Unmappable] if no II up to [max_ii] (default 128) works — e.g. a
    node's op is supported by no tile.  The II search escalates
    geometrically from {!min_ii} with binary refinement between the last
    failure and the first success, so hard kernels stop paying one full
    failed Rau search per skipped II level.

    [hint] warm-starts the search from a sibling design point's mapping
    (typically the same kernel on an architecture one knob away).  The hint
    is accepted only when (a) its II equals this point's {!min_ii}, so no
    cold search could find a lower II, (b) its schedule re-validates from
    first principles on this architecture — capability, slot exclusivity
    modulo II, and every dependence inequality under this mesh's distances —
    and (c) the caller's [validate] (e.g. the independent verifier's
    [check_mapping]) finds nothing wrong.  Any failure falls back silently
    to the cold search; [validate] is never consulted for cold results. *)

val loop_cycles : mapping -> trips:int -> int
(** Steady-state execution time of [trips] iterations:
    [makespan + (trips - 1) * ii]. *)

val utilization : mapping -> Dfg.t -> Arch.t -> float
(** Fraction of FU slots per II window actually issuing. *)
