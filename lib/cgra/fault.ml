module Rng = Picachu_tensor.Rng

type config = {
  seed : int;
  rf_rate : float;
  fu_rate : float;
  lut_rate : float;
  noc_rate : float;
}

let none = { seed = 0; rf_rate = 0.0; fu_rate = 0.0; lut_rate = 0.0; noc_rate = 0.0 }

let uniform ?(seed = 0) r =
  if not (r >= 0.0 && r <= 1.0) then invalid_arg "Fault.uniform: rate outside [0, 1]";
  { seed; rf_rate = r; fu_rate = r; lut_rate = r; noc_rate = r }

let enabled c =
  c.rf_rate > 0.0 || c.fu_rate > 0.0 || c.lut_rate > 0.0 || c.noc_rate > 0.0

let of_env () =
  let rate =
    match Sys.getenv_opt "PICACHU_FAULT_RATE" with
    | None -> 0.0
    | Some s -> (
        match float_of_string_opt s with
        | Some r when r >= 0.0 && r <= 1.0 -> r
        | _ -> invalid_arg "PICACHU_FAULT_RATE: expected a float in [0, 1]")
  in
  let seed =
    match Sys.getenv_opt "PICACHU_FAULT_SEED" with
    | None -> 0
    | Some s -> (
        match int_of_string_opt s with
        | Some i -> i
        | None -> invalid_arg "PICACHU_FAULT_SEED: expected an integer")
  in
  uniform ~seed rate

type counts = { rf : int; fu : int; lut : int; noc : int }

let no_faults = { rf = 0; fu = 0; lut = 0; noc = 0 }
let total c = c.rf + c.fu + c.lut + c.noc

let add a b =
  { rf = a.rf + b.rf; fu = a.fu + b.fu; lut = a.lut + b.lut; noc = a.noc + b.noc }

type injector = {
  cfg : config;
  rng : Rng.t;
  mutable c_rf : int;
  mutable c_fu : int;
  mutable c_lut : int;
  mutable c_noc : int;
}

(* golden-ratio odd multiplier decorrelates salts that differ in one bit *)
let injector ?(salt = 0) cfg =
  {
    cfg;
    rng = Rng.create (cfg.seed lxor (salt * 0x1E3779B97F4A7C15));
    c_rf = 0;
    c_fu = 0;
    c_lut = 0;
    c_noc = 0;
  }

let config inj = inj.cfg
let counts inj = { rf = inj.c_rf; fu = inj.c_fu; lut = inj.c_lut; noc = inj.c_noc }

(* flip one of the 52 mantissa bits: perturbs any finite value without
   changing its exponent, so no NaN/inf is manufactured from finite data *)
let flip rng v =
  let bit = Rng.int rng 52 in
  Int64.float_of_bits (Int64.logxor (Int64.bits_of_float v) (Int64.shift_left 1L bit))

let sample inj rate = rate > 0.0 && Rng.float inj.rng < rate

let rf_read inj v =
  if sample inj inj.cfg.rf_rate then begin
    inj.c_rf <- inj.c_rf + 1;
    flip inj.rng v
  end
  else v

let fu_output inj v =
  if sample inj inj.cfg.fu_rate then begin
    inj.c_fu <- inj.c_fu + 1;
    flip inj.rng v
  end
  else v

let lut_output inj v =
  if sample inj inj.cfg.lut_rate then begin
    inj.c_lut <- inj.c_lut + 1;
    flip inj.rng v
  end
  else v

let noc_drop inj =
  if sample inj inj.cfg.noc_rate then begin
    inj.c_noc <- inj.c_noc + 1;
    true
  end
  else false
