(** CGRA architecture instances (paper §4.2, Figure 4).

    A grid of tiles joined by a mesh network.  The PICACHU instance is
    heterogeneous (BrT on the corners for loop control, CoT and BaT
    interleaved through the body) with 4-lane precision-aware tiles; the
    baseline instance is homogeneous and scalar.  Tiles in designated
    columns own a port into the Shared Buffer; loads and stores may only be
    scheduled there (a standard CGRA mapping constraint the paper lists in
    §4.3 "DFG Mapping"). *)

module Op = Picachu_ir.Op

type flavor = Heterogeneous | Homogeneous

type t = {
  rows : int;
  cols : int;
  kinds : Fu.tile_kind array;  (** row-major, length rows*cols *)
  flavor : flavor;
  lanes : int;  (** INT16 lanes per tile (4 in PICACHU, 1 in baseline) *)
  mem_cols : int list;  (** columns with a Shared Buffer port *)
  route_slots : int;  (** pass-through routing capacity per tile per cycle *)
  lut_capacity_bytes : int;
      (** per-tile LUT ROM budget: total bytes of distinct tables a mapped
          kernel may keep resident (CoT uniform tables and NLI non-uniform
          segment tables alike) *)
  name : string;
}

val default_lut_capacity_bytes : int
(** 8192 — holds the 2 KiB Gaussian-CDF CoT table plus several NLI
    segment tables. *)

val picachu : ?rows:int -> ?cols:int -> ?lut_capacity_bytes:int -> unit -> t
(** Heterogeneous PICACHU CGRA (default 4x4): corners BrT, remaining tiles
    alternating CoT-heavy; ports on the left and right columns. *)

val baseline : ?rows:int -> ?cols:int -> ?lut_capacity_bytes:int -> unit -> t
(** Homogeneous scalar CGRA of the same size. *)

val hetero_mix : rows:int -> cols:int -> cot_share:float -> t
(** Design-space-exploration variant of {!picachu}: corners stay BrT, and
    [cot_share] of the remaining tiles are CoT (deterministically
    interleaved), the rest BaT. [picachu] corresponds to a share of 2/3. *)

val universal : ?rows:int -> ?cols:int -> ?lut_capacity_bytes:int -> unit -> t
(** Ablation architecture: every tile is a [UniT] carrying all FUs — an
    upper bound on mapping freedom, at a large area premium. *)

val with_lut_capacity : int -> t -> t
(** Functional update of [lut_capacity_bytes] (for constructors without the
    optional argument, and for shrinking the budget in tests). *)

val tiles : t -> int
val tile_kind : t -> int -> Fu.tile_kind
val coords : t -> int -> int * int
(** [(row, col)] of a tile index. *)

val distance : t -> int -> int -> int
(** Manhattan distance between tiles (mesh hop count). *)

val distance_matrix : t -> int array
(** Flattened [tiles x tiles] row-major matrix of {!distance} — precomputed
    once per mapping search so the placement inner loop indexes instead of
    recomputing coordinates. *)

val xy_path : t -> int -> int -> int list
(** Intermediate tiles of the X-then-Y route between two tiles, excluding
    both endpoints. *)

val has_mem_port : t -> int -> bool
val supports : t -> tile:int -> Op.t -> bool
(** Capability including the memory-port constraint. *)

val latency : t -> Op.t -> int
val count_supporting : t -> Op.t -> int
(** Number of tiles that could execute the op. *)

val canonical_string : t -> string
(** Canonical serialization of everything the mapper and cost model can
    observe ([name] omitted): two structurally identical instances
    serialize identically regardless of how they were constructed. *)

val structural_digest : t -> string
(** MD5 hex digest of {!canonical_string} — the architecture component of
    the compiler's content-addressed cache key. *)

val pp : Format.formatter -> t -> unit
