module Op = Picachu_ir.Op

type flavor = Heterogeneous | Homogeneous

type t = {
  rows : int;
  cols : int;
  kinds : Fu.tile_kind array;
  flavor : flavor;
  lanes : int;
  mem_cols : int list;
  route_slots : int;
  lut_capacity_bytes : int;
  name : string;
}

(* Per-tile LUT ROM budget (bytes).  8 KiB comfortably holds the 1024-entry
   FP16 CoT table (2 KiB) plus several non-uniform NLI segment tables; the
   mapper rejects kernels whose resident tables exceed it. *)
let default_lut_capacity_bytes = 8192

let is_corner rows cols idx =
  let r = idx / cols and c = idx mod cols in
  (r = 0 || r = rows - 1) && (c = 0 || c = cols - 1)

(* Heterogeneous mix: BrT on the corners (control is cheap and must reach
   everything), and a 2:1 CoT:BaT split of the body — the Taylor-polynomial
   kernels are multiplier-hungry (Table 4: mul+add chains dominate). *)
let hetero_kinds rows cols =
  let noncorner = ref 0 in
  Array.init (rows * cols) (fun idx ->
      if is_corner rows cols idx then Fu.BrT
      else begin
        let k = if !noncorner mod 3 = 1 then Fu.BaT else Fu.CoT in
        incr noncorner;
        k
      end)

let picachu ?(rows = 4) ?(cols = 4) ?(lut_capacity_bytes = default_lut_capacity_bytes) () =
  {
    rows;
    cols;
    kinds = hetero_kinds rows cols;
    flavor = Heterogeneous;
    lanes = 4;
    mem_cols = [ 0; cols - 1 ];
    route_slots = 2;
    lut_capacity_bytes;
    name = Printf.sprintf "picachu-%dx%d" rows cols;
  }

let hetero_mix ~rows ~cols ~cot_share =
  if cot_share < 0.0 || cot_share > 1.0 then invalid_arg "Arch.hetero_mix: share";
  let noncorner_total =
    let c = ref 0 in
    for idx = 0 to (rows * cols) - 1 do
      if not (is_corner rows cols idx) then incr c
    done;
    !c
  in
  let target_cot =
    int_of_float (Float.round (cot_share *. float_of_int noncorner_total))
  in
  let placed = ref 0 and seen = ref 0 in
  let kinds =
    Array.init (rows * cols) (fun idx ->
        if is_corner rows cols idx then Fu.BrT
        else begin
          incr seen;
          (* error-diffusion interleave: place a CoT whenever the running
             quota falls behind the requested share *)
          let want = cot_share *. float_of_int !seen in
          if float_of_int !placed < want -. 1e-9 && !placed < target_cot then begin
            incr placed;
            Fu.CoT
          end
          else Fu.BaT
        end)
  in
  {
    rows;
    cols;
    kinds;
    flavor = Heterogeneous;
    lanes = 4;
    mem_cols = [ 0; cols - 1 ];
    route_slots = 2;
    lut_capacity_bytes = default_lut_capacity_bytes;
    name = Printf.sprintf "mix-%dx%d-cot%.0f%%" rows cols (100.0 *. cot_share);
  }

let universal ?(rows = 4) ?(cols = 4) ?(lut_capacity_bytes = default_lut_capacity_bytes) () =
  {
    rows;
    cols;
    kinds = Array.make (rows * cols) Fu.UniT;
    flavor = Heterogeneous;
    lanes = 4;
    mem_cols = [ 0; cols - 1 ];
    route_slots = 2;
    lut_capacity_bytes;
    name = Printf.sprintf "universal-%dx%d" rows cols;
  }

let baseline ?(rows = 4) ?(cols = 4) ?(lut_capacity_bytes = default_lut_capacity_bytes) () =
  {
    rows;
    cols;
    kinds = Array.make (rows * cols) Fu.BaT;
    flavor = Homogeneous;
    lanes = 1;
    mem_cols = [ 0; cols - 1 ];
    route_slots = 2;
    lut_capacity_bytes;
    name = Printf.sprintf "baseline-%dx%d" rows cols;
  }

let with_lut_capacity bytes a =
  if bytes < 0 then invalid_arg "Arch.with_lut_capacity";
  { a with lut_capacity_bytes = bytes }

let tiles a = a.rows * a.cols
let tile_kind a i = a.kinds.(i)
let coords a i = (i / a.cols, i mod a.cols)

let distance a i j =
  let ri, ci = coords a i and rj, cj = coords a j in
  abs (ri - rj) + abs (ci - cj)

let distance_matrix a =
  let t = tiles a in
  Array.init (t * t) (fun idx -> distance a (idx / t) (idx mod t))

let xy_path a src dst =
  (* every tile visited after src — horizontal leg first, then vertical,
     including the turning tile — with the destination dropped *)
  let rs, cs = coords a src and rd, cd = coords a dst in
  let tiles = ref [] in
  let c = ref cs in
  while !c <> cd do
    c := !c + (if cd > cs then 1 else -1);
    tiles := ((rs * a.cols) + !c) :: !tiles
  done;
  let r = ref rs in
  while !r <> rd do
    r := !r + (if rd > rs then 1 else -1);
    tiles := ((!r * a.cols) + cd) :: !tiles
  done;
  match !tiles with
  | last :: rest when last = dst -> List.rev rest
  | l -> List.rev l

let has_mem_port a i =
  let _, c = coords a i in
  List.mem c a.mem_cols

let supports a ~tile (op : Op.t) =
  let capability =
    match a.flavor with
    | Heterogeneous -> Fu.supports_hetero a.kinds.(tile) op
    | Homogeneous -> Fu.supports_baseline op
  in
  capability && (not (Op.is_memory op)) || (Op.is_memory op && capability && has_mem_port a tile)

let latency a op =
  match a.flavor with
  | Heterogeneous -> Fu.latency_hetero op
  | Homogeneous -> Fu.latency_baseline op

let count_supporting a op =
  let c = ref 0 in
  for i = 0 to tiles a - 1 do
    if supports a ~tile:i op then incr c
  done;
  !c

(* Canonical serialization for content addressing: everything the mapper and
   cost model can observe, with [name] deliberately omitted — two instances
   with the same grid, tile kinds, ports and lanes behave identically no
   matter how they were constructed or labeled. *)
let canonical_string a =
  Printf.sprintf "%dx%d;%s;%s;lanes=%d;mem=%s;route=%d;lutcap=%d" a.rows a.cols
    (match a.flavor with Heterogeneous -> "het" | Homogeneous -> "hom")
    (String.concat "" (Array.to_list (Array.map Fu.kind_name a.kinds)))
    a.lanes
    (String.concat "," (List.map string_of_int a.mem_cols))
    a.route_slots a.lut_capacity_bytes

let structural_digest a = Digest.to_hex (Digest.string (canonical_string a))

let pp fmt a =
  Format.fprintf fmt "%s (%dx%d, %d lanes)@." a.name a.rows a.cols a.lanes;
  for r = 0 to a.rows - 1 do
    Format.fprintf fmt "  ";
    for c = 0 to a.cols - 1 do
      let i = (r * a.cols) + c in
      Format.fprintf fmt "%s%s " (Fu.kind_name a.kinds.(i))
        (if has_mem_port a i then "*" else " ")
    done;
    Format.fprintf fmt "@."
  done
