module Dfg = Picachu_dfg.Dfg

type verdict = Feasible of int | Infeasible_up_to of int | Unknown

exception Out_of_budget

(* Backtracking search for a complete modulo schedule at a fixed II. Nodes
   are placed in topological order; each candidate (tile, cycle) must respect
   capability, the one-issue-per-slot rule, all already-placed dependence
   constraints in both directions, and self-loop latency. *)
let search arch (g : Dfg.t) ii ~window ~budget =
  let n = Dfg.node_count g in
  let tiles = Arch.tiles arch in
  let order = Array.of_list (Dfg.topo_order g) in
  let lat = Array.init n (fun u -> Arch.latency arch g.Dfg.nodes.(u).Dfg.op) in
  let dist = Arch.distance_matrix arch in
  (* per-node incident edges and forward predecessors, computed once: the
     inner search consults both per candidate slot, and filtering the full
     edge list there rebuilds the same lists millions of times per probe *)
  let incident = Array.make n [] in
  let fwd_preds = Array.make n [] in
  List.iter
    (fun (e : Dfg.edge) ->
      incident.(e.src) <- e :: incident.(e.src);
      if e.dst <> e.src then incident.(e.dst) <- e :: incident.(e.dst);
      if e.distance = 0 && e.dst <> e.src then
        fwd_preds.(e.dst) <- e.src :: fwd_preds.(e.dst))
    g.Dfg.edges;
  let supports =
    Array.init n (fun u ->
        Array.init tiles (fun tl ->
            Arch.supports arch ~tile:tl g.Dfg.nodes.(u).Dfg.op))
  in
  let time = Array.make n (-1) and tile = Array.make n (-1) in
  let busy = Array.make_matrix tiles ii false in
  let steps = ref 0 in
  (* the window must cover mesh transport on top of the II periods *)
  let diameter = arch.Arch.rows + arch.Arch.cols - 2 in
  (* dependence check between u (being placed at t,tl) and a placed v *)
  let edge_ok (e : Dfg.edge) =
    let ts = time.(e.src) and td = time.(e.dst) in
    if ts < 0 || td < 0 then true
    else if e.src = e.dst then lat.(e.src) <= e.distance * ii
    else
      td
      >= ts + lat.(e.src)
         + dist.((tile.(e.src) * tiles) + tile.(e.dst))
         - (e.distance * ii)
  in
  let rec place idx =
    incr steps;
    if !steps > budget then raise Out_of_budget;
    if idx = n then true
    else begin
      let u = order.(idx) in
      (* earliest from placed forward predecessors, ignoring distances *)
      let earliest =
        List.fold_left
          (fun acc v ->
            if time.(v) >= 0 then Stdlib.max acc (time.(v) + lat.(v)) else acc)
          0 fwd_preds.(u)
      in
      let found = ref false in
      let t = ref earliest in
      while (not !found) && !t < earliest + (window * ii) + diameter do
        for tl = 0 to tiles - 1 do
          if (not !found) && supports.(u).(tl) && not busy.(tl).(!t mod ii)
          then begin
            time.(u) <- !t;
            tile.(u) <- tl;
            if List.for_all edge_ok incident.(u) then begin
              busy.(tl).(!t mod ii) <- true;
              if place (idx + 1) then found := true
              else busy.(tl).(!t mod ii) <- false
            end;
            if not !found then begin
              time.(u) <- -1;
              tile.(u) <- -1
            end
          end
        done;
        incr t
      done;
      !found
    end
  in
  try if place 0 then Some true else Some false with Out_of_budget -> None

let probe ?(max_nodes = 14) ?max_ii ?(window = 3) ?(budget = 2_000_000) arch g =
  if Dfg.node_count g > max_nodes then Unknown
  else begin
    let lower = Mapper.min_ii arch g in
    let upper = match max_ii with Some m -> m | None -> lower + 3 in
    let rec go ii =
      if ii > upper then Infeasible_up_to upper
      else
        match search arch g ii ~window ~budget with
        | Some true -> Feasible ii
        | Some false -> go (ii + 1)
        | None -> Unknown
    in
    go lower
  end

let heuristic_gap arch g =
  let lower = Mapper.min_ii arch g in
  let achieved = (Mapper.map_dfg arch g).Mapper.ii in
  (lower, achieved, probe arch g)
