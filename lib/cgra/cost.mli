(** Area and power model (paper §5.3.1, Table 7).

    The paper synthesizes RTL at 45nm/1GHz and reports a component
    breakdown; this model reproduces that accounting analytically from
    per-component unit costs calibrated to the published table:

    - a 32x32 systolic array: MAC area/power per PE, plus its input, weight
      and output SRAMs (CACTI-style linear-in-capacity model),
    - the 4x4 CGRA: per-tile base cost plus the FU overheads the paper
      quantifies (FP2FX +1.7% area / +0.8% power, vectorized FUs +59.8% /
      +18.4%, FP FUs +11.6% / +26.3%, LUT +0.5% / +3.8% relative to a basic
      tile),
    - "others": DMA engine and control glue.

    All figures are at 1 GHz; energy integrates power over cycle counts. *)

type component = { area_mm2 : float; power_mw : float }

type breakdown = {
  sram : component;
  macs : component;
  cgra : component;
  others : component;
}

val basic_tile : component
(** A baseline scalar tile (no special FUs). *)

val tile_cost : hetero:bool -> Fu.tile_kind -> component
(** Cost of one tile including its FU overheads; a homogeneous baseline tile
    is {!basic_tile}. *)

val cgra_cost : Arch.t -> component
val sram_cost : kb:float -> component
(** On-chip SRAM (shared buffer or systolic SRAMs) per capacity. *)

val lut_rom_cost : bytes:int -> component
(** Per-tile cost of keeping [bytes] of LUT tables resident, scaled
    linearly from the Table 7 "lut" overhead (which prices the 2 KiB CoT
    table) — how the backend comparison charges NLI segment tables. *)

val systolic_cost : dim:int -> sram_kb:float -> component

val picachu_breakdown :
  ?systolic_dim:int -> ?shared_buffer_kb:float -> Arch.t -> breakdown
(** The Table 7 configuration by default (32x32 array, 40KB buffer). *)

val total : breakdown -> component
val energy_uj : component -> cycles:int -> float
(** Energy in microjoules for [cycles] at 1 GHz. *)

val fu_overheads : (string * float * float) list
(** [(name, area_frac, power_frac)] of each special FU relative to a basic
    tile — the §5.3.1 numbers. *)

val pp_breakdown : Format.formatter -> breakdown -> unit
