module Op = Picachu_ir.Op
module Instr = Picachu_ir.Instr
module Kernel = Picachu_ir.Kernel
module Interp = Picachu_ir.Interp
module Dfg = Picachu_dfg.Dfg
module Nm = Picachu_numerics

exception Timing_violation of string
exception Execution_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Execution_error s)) fmt
let timing fmt = Printf.ksprintf (fun s -> raise (Timing_violation s)) fmt

type result = {
  out_arrays : (string * float array) list;
  out_scalars : (string * float) list;
  cycles : int;
}

let eval_binop (op : Op.binop) a b =
  match op with
  | Add -> a +. b
  | Sub -> a -. b
  | Mul -> a *. b
  | Div -> a /. b
  | Max -> Float.max a b
  | Min -> Float.min a b

let eval_cmp (op : Op.cmpop) a b =
  let r =
    match op with
    | Op.Lt -> a < b
    | Op.Le -> a <= b
    | Op.Gt -> a > b
    | Op.Ge -> a >= b
    | Op.Eq -> a = b
    | Op.Ne -> a <> b
  in
  if r then 1.0 else 0.0

let run_loop ?fault arch (loop : Kernel.loop) (g : Dfg.t) (m : Mapper.mapping)
    ~arrays ~scalars =
  if loop.Kernel.vector_width <> 1 then
    invalid_arg "Executor.run_loop: vectorized loops share the scalar schedule";
  let body = Array.of_list loop.Kernel.body in
  let count = Array.length body in
  let trip_name = Interp.trip_scalar loop in
  let n =
    match List.assoc_opt trip_name scalars with
    | Some v -> int_of_float v
    | None -> fail "%s: missing trip scalar %s" loop.Kernel.label trip_name
  in
  let trips = (n + loop.Kernel.step - 1) / loop.Kernel.step in
  (* instruction -> owning node *)
  let owner = Array.make count (-1) in
  Array.iter
    (fun (node : Dfg.node) ->
      List.iter (fun i -> owner.(i) <- node.Dfg.id) node.Dfg.origins)
    g.Dfg.nodes;
  (* iteration-invariant registers: constants and scalar live-ins *)
  let fixed = Array.make count None in
  Array.iter
    (fun (i : Instr.t) ->
      match i.Instr.op with
      | Op.Const v -> fixed.(i.Instr.id) <- Some v
      | Op.Input s -> (
          match List.assoc_opt s scalars with
          | Some v -> fixed.(i.Instr.id) <- Some v
          | None -> fail "%s: missing scalar %s" loop.Kernel.label s)
      | _ -> ())
    body;
  (* per-iteration value and availability-cycle matrices *)
  let values = Array.make_matrix (Stdlib.max trips 1) count 0.0 in
  let avail = Array.make_matrix (Stdlib.max trips 1) count (-1) in
  let node_lat u = Arch.latency arch g.Dfg.nodes.(u).Dfg.op in
  let outputs = Hashtbl.create 4 in
  let get_array name =
    match List.assoc_opt name arrays with
    | Some a -> a
    | None -> fail "%s: missing input stream %s" loop.Kernel.label name
  in
  let get_output name =
    match Hashtbl.find_opt outputs name with
    | Some a -> a
    | None ->
        let a = Array.make n 0.0 in
        Hashtbl.add outputs name a;
        a
  in
  let last_cycle = ref 0 in
  (* read instr [a]'s value for iteration [k] from the consumer node [u]
     issuing at cycle [c]; [back] marks a loop-carried (phi next) read *)
  let read ~u ~c ~k ~back a =
    match fixed.(a) with
    | Some v -> v
    | None ->
        let kk = if back then k - 1 else k in
        if kk < 0 then fail "%s: back edge read before any iteration" loop.Kernel.label
        else begin
          let producer = owner.(a) in
          if producer < 0 then fail "%s: unowned operand %%%d" loop.Kernel.label a;
          if avail.(kk).(a) < 0 then
            timing "%s: node %d reads %%%d[k=%d] before it was produced"
              loop.Kernel.label u a kk;
          if producer <> u then begin
            let hops =
              Arch.distance arch m.Mapper.schedule.(producer).Mapper.tile
                m.Mapper.schedule.(u).Mapper.tile
            in
            if avail.(kk).(a) + hops > c then
              timing "%s: node %d reads %%%d[k=%d] at cycle %d, ready only at %d+%d"
                loop.Kernel.label u a kk c
                avail.(kk).(a) hops
          end;
          let v = values.(kk).(a) in
          match fault with
          | None -> v
          | Some inj ->
              (* a dropped mesh transfer leaves the consumer's input register
                 holding the previous iteration's value (zero before any
                 iteration wrote it); RF read disturbance applies to every
                 register read, local or routed *)
              let v =
                if producer <> u && Fault.noc_drop inj then
                  if kk > 0 then values.(kk - 1).(a) else 0.0
                else v
              in
              Fault.rf_read inj v
        end
  in
  let exec_node (node : Dfg.node) k =
    let u = node.Dfg.id in
    let t_u = m.Mapper.schedule.(u).Mapper.time in
    let c = t_u + (k * m.Mapper.ii) in
    let done_at = c + node_lat u in
    last_cycle := Stdlib.max !last_cycle done_at;
    let base = k * loop.Kernel.step in
    List.iter
      (fun iid ->
        let i = body.(iid) in
        let arg ?(back = false) idx = read ~u ~c ~k ~back (List.nth i.Instr.args idx) in
        let v =
          match i.Instr.op with
          | Op.Const _ | Op.Input _ -> fail "%s: register op owned by a node" loop.Kernel.label
          | Op.Phi -> if k = 0 then arg 0 else arg ~back:true 1
          | Op.Bin op -> eval_binop op (arg 0) (arg 1)
          | Op.Un Op.Neg -> -.arg 0
          | Op.Un Op.Abs -> Float.abs (arg 0)
          | Op.Un Op.Floor -> Float.floor (arg 0)
          | Op.Cmp op -> eval_cmp op (arg 0) (arg 1)
          | Op.Select -> if arg 0 <> 0.0 then arg 1 else arg 2
          | Op.Load s ->
              (* the address register is a real dependence on the induction
                 value: verify its timing even though the AGU computes the
                 effective address locally *)
              ignore (arg 0);
              let a = get_array s in
              let idx = base + i.Instr.offset in
              if idx >= Array.length a then
                fail "%s: load %s[%d] out of bounds" loop.Kernel.label s idx
              else a.(idx)
          | Op.Store s ->
              ignore (arg 0);
              let out = get_output s in
              let v = arg 1 in
              let idx = base + i.Instr.offset in
              if idx < Array.length out then out.(idx) <- v;
              v
          | Op.Fp2fx_int ->
              let ip, _ = Nm.Fixed_point.split (arg 0) in
              float_of_int ip
          | Op.Fp2fx_frac ->
              let _, fp = Nm.Fixed_point.split (arg 0) in
              fp
          | Op.Shift_exp -> Float.ldexp (arg 0) (int_of_float (Float.round (arg 1)))
          | Op.Lut name -> Nm.Lut.eval (Interp.lookup_lut name) (arg 0)
          | Op.Br -> arg 0
          | Op.Fused _ -> fail "%s: fused opcode with no members" loop.Kernel.label
        in
        (* FU output corruption latches into the result register and
           propagates; memory/routing ops (load, store, phi, br) have no FU
           datapath — their faults are the RF/NoC models above *)
        let v =
          match fault with
          | None -> v
          | Some inj -> (
              match i.Instr.op with
              | Op.Lut _ -> Fault.lut_output inj v
              | Op.Bin _ | Op.Un _ | Op.Cmp _ | Op.Select | Op.Fp2fx_int
              | Op.Fp2fx_frac | Op.Shift_exp ->
                  Fault.fu_output inj v
              | _ -> v)
        in
        values.(k).(iid) <- v;
        avail.(k).(iid) <- done_at)
      node.Dfg.origins
  in
  (* simulate in dataflow order (iteration-major, topological within), while
     the recorded cycle numbers carry the pipelined timing that [read]
     verifies *)
  let order = Dfg.topo_order g in
  for k = 0 to trips - 1 do
    List.iter (fun u -> exec_node g.Dfg.nodes.(u) k) order
  done;
  let out_scalars =
    List.map
      (fun (name, id) ->
        (name, if trips = 0 then 0.0 else values.(trips - 1).(id)))
      loop.Kernel.exports
  in
  {
    out_arrays = Hashtbl.fold (fun name a acc -> (name, a) :: acc) outputs [];
    out_scalars;
    cycles = !last_cycle;
  }
