(** Cycle-accurate execution of a mapped loop — the stand-in for the paper's
    RTL evaluation framework.

    The executor runs the software-pipelined schedule exactly as the
    configured fabric would: iteration [k] of node [u] issues at cycle
    [t(u) + k*II]; every operand read is dynamically verified against the
    producer's completion cycle plus the mesh routing distance, so a
    mapping bug (a dependence the scheduler missed, a mis-patched phi, a
    wrong offset after unrolling) surfaces as a {!Timing_violation} rather
    than silently producing the right value at the wrong time.

    Functional results must equal the sequential reference interpreter —
    asserted across the whole kernel library in the test suite. *)

module Kernel = Picachu_ir.Kernel
module Dfg = Picachu_dfg.Dfg

exception Timing_violation of string
exception Execution_error of string

type result = {
  out_arrays : (string * float array) list;
  out_scalars : (string * float) list;  (** exported accumulators *)
  cycles : int;  (** completion cycle of the last issued operation *)
}

val run_loop :
  ?fault:Fault.injector ->
  Arch.t ->
  Kernel.loop ->
  Dfg.t ->
  Mapper.mapping ->
  arrays:(string * float array) list ->
  scalars:(string * float) list ->
  result
(** The trip count comes from the loop's trip scalar (like the reference
    interpreter). Requires [vector_width = 1] (the INT16 lane mode shares
    this schedule; its lanes are SIMD within a tile).

    [fault] samples the {!Fault} models while executing: RF read disturbance
    and NoC drops at operand reads, FU/LUT output corruption at result
    latches.  Faults perturb values only — never the schedule — so a faulty
    run completes (no exception) and mismatches surface as corrupted
    outputs.  Omitting [fault] (or passing an injector over {!Fault.none})
    leaves the execution byte-identical to the hook-free path. *)
